package server

import (
	"net/http"
	"time"

	"collabwf/internal/declog"
	"collabwf/internal/obs"
	"collabwf/internal/prof"
)

// Statusz is the JSON document served on /statusz: a one-page operator
// summary of the coordinator (what /metrics exposes as raw families,
// /statusz condenses into one readable object).
type Statusz struct {
	Workflow string `json:"workflow"`
	// Run is the id of the workflow instance this page describes (empty in
	// the single-run server; "default" and friends under the Manager).
	Run           string  `json:"run,omitempty"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Events        int     `json:"events"`
	Durable       bool    `json:"durable"`
	// CommitQueueDepth is the group-commit backlog: records buffered in the
	// WAL and awaiting their batch fsync (0 for in-memory coordinators).
	CommitQueueDepth int    `json:"commit_queue_depth"`
	Ready            string `json:"ready"` // "ok" or the readiness error
	// WALStalled carries the failed-group-sync error while the WAL refuses
	// appends (pending realign + Resume); "" when healthy.
	WALStalled  string         `json:"wal_stalled,omitempty"`
	Guards      map[string]int `json:"guards,omitempty"`
	Subscribers int            `json:"subscribers"`
	// DroppedNotifications surfaces notifications lost to slow subscribers
	// — previously counted silently — total and attributed per peer.
	DroppedNotifications DroppedNotifications `json:"dropped_notifications"`
	// Snapshot describes the published lock-free read snapshot: sequence
	// number (publications so far), age, and covered events.
	Snapshot SnapshotStatus `json:"snapshot"`
	// Build identifies the running binary (toolchain, module version, VCS
	// revision) — the same identity wf_build_info exposes to scrapes.
	Build obs.BuildInfo `json:"build"`
	// DecisionLog reports the audit pipeline (nil when none is attached):
	// sink, queue depth, and the emitted/dropped/exported tallies.
	DecisionLog *declog.Status `json:"decision_log,omitempty"`
	// RuleEngine condenses the evaluation profiler: total fires and
	// attempts plus the top rules by cumulative cost (enabled: false when
	// the coordinator runs without -profile-rules).
	RuleEngine prof.Status `json:"rule_engine"`
	// Metrics condenses every registered family to a scalar: counters and
	// gauges sum their series; histograms report {count, sum}.
	Metrics map[string]any `json:"metrics,omitempty"`
	// Runs is the fleet block (Manager statusz only): one row per active
	// run plus the aggregate counts, so no shard is invisible.
	Runs *RunsStatusz `json:"runs,omitempty"`
}

// RunsStatusz is the Manager's fleet summary on /statusz.
type RunsStatusz struct {
	// Active counts the live shards (the default run included); Created and
	// Archived are lifetime tallies of the lifecycle API.
	Active   int `json:"active"`
	Created  int `json:"created"`
	Archived int `json:"archived"`
	// Events is the fleet-wide released-event total.
	Events int `json:"events"`
	// Runs lists the live shards sorted by id.
	Runs []RunStatus `json:"runs"`
}

// RunStatus is one shard's row in the fleet block — the per-run view of the
// gauges that a single-run /statusz reports globally (run length, commit
// queue depth, snapshot age).
type RunStatus struct {
	ID               string  `json:"id"`
	Workflow         string  `json:"workflow"`
	Events           int     `json:"events"`
	CommitQueueDepth int     `json:"commit_queue_depth"`
	SnapshotAge      float64 `json:"snapshot_age_seconds"`
	Subscribers      int     `json:"subscribers"`
	Ready            string  `json:"ready"`
	WALStalled       string  `json:"wal_stalled,omitempty"`
}

// DroppedNotifications is the /statusz drop report.
type DroppedNotifications struct {
	Total  int            `json:"total"`
	ByPeer map[string]int `json:"by_peer,omitempty"`
}

// SnapshotStatus is the /statusz read-snapshot report.
type SnapshotStatus struct {
	Seq        uint64  `json:"seq"`
	AgeSeconds float64 `json:"age_seconds"`
	Events     int     `json:"events"`
}

// StatuszHandler serves the operator summary for the coordinator. reg may
// be nil (the metrics section is then omitted).
func StatuszHandler(c *Coordinator, reg *obs.Registry) http.Handler {
	start := time.Now()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, statuszFor(c, reg, start))
	})
}

// statuszFor assembles the operator summary document; the single-run
// handler serves it as-is, the Manager's fleet handler adds the runs block.
func statuszFor(c *Coordinator, reg *obs.Registry, start time.Time) Statusz {
	st := Statusz{
		Workflow:         c.Name(),
		Run:              c.RunID(),
		UptimeSeconds:    time.Since(start).Seconds(),
		Events:           c.Len(),
		Durable:          c.Durable(),
		CommitQueueDepth: c.CommitQueueDepth(),
		Ready:            "ok",
		WALStalled:       c.WALStalled(),
		Guards:           c.Guards(),
		Subscribers:      c.Subscribers(),
		DroppedNotifications: DroppedNotifications{
			Total:  c.Dropped(),
			ByPeer: c.DroppedByPeer(),
		},
	}
	seq, age, events := c.SnapshotInfo()
	st.Snapshot = SnapshotStatus{Seq: seq, AgeSeconds: age.Seconds(), Events: events}
	st.Build = obs.ReadBuild()
	st.DecisionLog = c.DecisionLog().Status()
	st.RuleEngine = c.Profiler().Status(3)
	if err := c.Ready(); err != nil {
		st.Ready = err.Error()
	}
	if reg != nil {
		st.Metrics = summarize(reg)
	}
	return st
}

// runStatus condenses one shard into its fleet-block row.
func runStatus(id string, c *Coordinator) RunStatus {
	rs := RunStatus{
		ID:               id,
		Workflow:         c.Name(),
		Events:           c.Len(),
		CommitQueueDepth: c.CommitQueueDepth(),
		Subscribers:      c.Subscribers(),
		Ready:            "ok",
		WALStalled:       c.WALStalled(),
	}
	if _, age, _ := c.SnapshotInfo(); age > 0 {
		rs.SnapshotAge = age.Seconds()
	}
	if err := c.Ready(); err != nil {
		rs.Ready = err.Error()
	}
	return rs
}

// summarize folds a registry snapshot into family → scalar form: counter
// and gauge series sum; histograms keep {count, sum}.
func summarize(reg *obs.Registry) map[string]any {
	out := make(map[string]any)
	for _, fam := range reg.Gather() {
		if fam.Type == "histogram" {
			var count uint64
			var sum float64
			for _, s := range fam.Series {
				if s.Hist != nil {
					count += s.Hist.Count
					sum += s.Hist.Sum
				}
			}
			out[fam.Name] = map[string]any{"count": count, "sum": sum}
			continue
		}
		total := 0.0
		for _, s := range fam.Series {
			total += s.Value
		}
		out[fam.Name] = total
	}
	return out
}
