package server

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"collabwf/internal/obs"
	"collabwf/internal/schema"
	"collabwf/internal/wal"
	"collabwf/internal/workload"
)

// gaugeValue sums a family's series values on the registry.
func gaugeValue(t *testing.T, reg *obs.Registry, name string) float64 {
	t.Helper()
	for _, fam := range reg.Gather() {
		if fam.Name != name {
			continue
		}
		total := 0.0
		for _, s := range fam.Series {
			total += s.Value
		}
		return total
	}
	t.Fatalf("family %s not registered", name)
	return 0
}

// TestCloseClosesSubscriberChannels is the regression test for the shutdown
// bug: Close used to leave subscriber channels open, so a client ranging
// over one hung forever and the wf_subscribers gauge stayed stale.
func TestCloseClosesSubscriberChannels(t *testing.T) {
	reg := obs.NewRegistry()
	c := New("Hiring", workload.Hiring())
	c.Instrument(reg)
	ch, cancel, err := c.Subscribe("hr", 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Subscribe("sue", 8); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit("hr", "clear", nil); err != nil {
		t.Fatal(err)
	}

	done := make(chan int)
	go func() {
		// The ranging consumer: must exit once Close closes the channel.
		got := 0
		for range ch {
			got++
		}
		done <- got
	}()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-done:
		if got != 1 {
			t.Fatalf("consumer received %d notifications, want 1", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ranging consumer still blocked after Close")
	}
	if n := c.Subscribers(); n != 0 {
		t.Fatalf("Subscribers() = %d after Close, want 0", n)
	}
	if g := gaugeValue(t, reg, "wf_subscribers"); g != 0 {
		t.Fatalf("wf_subscribers = %v after Close, want 0", g)
	}
	// cancel after Close must be a safe no-op (the channel is already closed
	// and unregistered; cancel must not double-close or go negative).
	cancel()
	cancel()
	if g := gaugeValue(t, reg, "wf_subscribers"); g != 0 {
		t.Fatalf("wf_subscribers = %v after post-Close cancel, want 0", g)
	}
	if _, _, err := c.Subscribe("hr", 8); err == nil {
		t.Fatal("Subscribe after Close must be rejected")
	}
}

// TestCloseClosesSubscribersDurable runs the same shutdown contract through
// the durable path, where Close additionally drains the commit queue and
// writes the final snapshot before closing the channels.
func TestCloseClosesSubscribersDurable(t *testing.T) {
	c, err := NewDurable("Hiring", workload.Hiring(), DurabilityConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	ch, _, err := c.Subscribe("hr", 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit("hr", "clear", nil); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		for range ch {
		}
		close(done)
	}()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("ranging consumer still blocked after durable Close")
	}
	if err := c.Close(); err != nil {
		t.Fatal("second Close must be a nil no-op:", err)
	}
}

// TestTransitionsIncrementalMatchesRescan pins the polling optimization:
// the cached visible-index answer must equal a brute-force rescan of the
// whole run, for every peer and every from cursor, interleaved with new
// submissions (which extend the cache incrementally).
func TestTransitionsIncrementalMatchesRescan(t *testing.T) {
	prog := workload.Hiring()
	subs := randomWorkload(t, prog, 11, 12)
	c := New("Hiring", prog)

	// bruteForce recomputes the peer's visible transitions from scratch,
	// ignoring the cache — the pre-optimization semantics.
	bruteForce := func(peer schema.Peer, from int) []Notification {
		c.mu.Lock()
		defer c.mu.Unlock()
		var out []Notification
		for idx := 0; idx < c.observable; idx++ {
			if idx >= from && c.run.VisibleAt(idx, peer) {
				out = append(out, c.buildNotification(peer, idx))
			}
		}
		return out
	}

	check := func() {
		for _, peer := range prog.Peers() {
			for from := 0; from <= c.Len()+1; from++ {
				got, err := c.Transitions(peer, from)
				if err != nil {
					t.Fatal(err)
				}
				want := bruteForce(peer, from)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("peer %s from %d:\n got: %+v\nwant: %+v", peer, from, got, want)
				}
			}
		}
	}

	check() // empty run
	for i, s := range subs {
		if _, err := c.Submit(s.peer, s.rule, s.bindings); err != nil {
			t.Fatalf("submission %d: %v", i, err)
		}
		// Poll after every event so the cache is repeatedly extended by one.
		check()
	}
}

// TestCrashDuringGroupCommit is the property test for the batched failure
// path: when the group fsync fails mid-batch, (a) every submitter whose
// record was in flight gets an error, (b) recovery replays exactly the
// durable prefix, and (c) no subscriber ever saw a rolled-back event.
func TestCrashDuringGroupCommit(t *testing.T) {
	prog := workload.Hiring()
	fp := wal.NewFailpoints()
	dir := t.TempDir()
	c, err := NewDurable("Hiring", prog, DurabilityConfig{Dir: dir, Sync: wal.SyncAlways, Failpoints: fp})
	if err != nil {
		t.Fatal(err)
	}
	ch, cancelSub, err := c.Subscribe("hr", 256)
	if err != nil {
		t.Fatal(err)
	}
	defer cancelSub()

	const durablePrefix = 3
	for i := 0; i < durablePrefix; i++ {
		if _, err := c.Submit("hr", "clear", nil); err != nil {
			t.Fatal(err)
		}
	}

	// Slow the next fsync down so every concurrent submitter lands in the
	// same doomed window, then fail it.
	boom := errors.New("EIO mid-batch")
	fp.SlowSync(150 * time.Millisecond)
	fp.FailNextSync(boom)
	const k = 6
	errs := make([]error, k)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.Submit("hr", "clear", nil)
		}(i)
	}
	wg.Wait()
	fp.Reset()

	// (a) Every submitter in the doomed window errored.
	for i, err := range errs {
		if err == nil {
			t.Fatalf("submitter %d resolved durable through the failed group sync", i)
		}
	}
	if got := c.Len(); got != durablePrefix {
		t.Fatalf("Len() = %d after failed batch, want %d", got, durablePrefix)
	}
	// The stall was realigned by the failed submitters; the pipeline works
	// again without outside intervention.
	if err := c.Ready(); err != nil {
		t.Fatalf("coordinator not ready after realign: %v", err)
	}
	if _, err := c.Submit("hr", "clear", nil); err != nil {
		t.Fatalf("submit after realign: %v", err)
	}

	// (c) Notifications cover exactly the released events, in index order —
	// none for a rolled-back event.
	want := 0
	for len(ch) > 0 {
		n := <-ch
		if n.Index != want {
			t.Fatalf("notification index %d, want %d", n.Index, want)
		}
		want++
	}
	if want != durablePrefix+1 {
		t.Fatalf("got %d notifications, want %d", want, durablePrefix+1)
	}

	// (b) Crash (no Close) and recover: exactly the durable prefix replays.
	state := captureState(t, c)
	rc, err := Recover("Hiring", prog, DurabilityConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if got := rc.Len(); got != durablePrefix+1 {
		t.Fatalf("recovered %d events, want %d", got, durablePrefix+1)
	}
	if got := captureState(t, rc); got != state {
		t.Fatalf("recovered state diverged:\n got: %s\nwant: %s", got, state)
	}
}

// TestConcurrentSubmitsReleaseInOrder stresses the pipeline: many
// concurrent durable submitters, every commit grouped, and still a single
// totally-ordered run with contiguous in-order notifications.
func TestConcurrentSubmitsReleaseInOrder(t *testing.T) {
	prog := workload.Hiring()
	dir := t.TempDir()
	c, err := NewDurable("Hiring", prog, DurabilityConfig{Dir: dir, Sync: wal.SyncAlways, SnapshotEvery: 7})
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 8, 5
	ch, cancelSub, err := c.Subscribe("hr", workers*per+8)
	if err != nil {
		t.Fatal(err)
	}
	defer cancelSub()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := c.Submit("hr", "clear", nil); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if got := c.Len(); got != workers*per {
		t.Fatalf("Len() = %d, want %d", got, workers*per)
	}
	next := 0
	for len(ch) > 0 {
		n := <-ch
		if n.Index != next {
			t.Fatalf("notification index %d, want %d (in-order contiguous release)", n.Index, next)
		}
		next++
	}
	if next != workers*per {
		t.Fatalf("received %d notifications, want %d", next, workers*per)
	}
	state := captureState(t, c)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	rc, err := Recover("Hiring", prog, DurabilityConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if got := captureState(t, rc); got != state {
		t.Fatalf("recovered state diverged:\n got: %s\nwant: %s", got, state)
	}
}

// TestAdmissionShedsOverLimit drives the admission middleware directly: with
// the single slot held, the next request is shed with 429 + Retry-After and
// counted on wf_admission_shed_total.
func TestAdmissionShedsOverLimit(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	enter := make(chan struct{})
	release := make(chan struct{})
	h := Admission(m, 1, nil, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		enter <- struct{}{}
		<-release
		w.WriteHeader(http.StatusOK)
	}))

	firstDone := make(chan *httptest.ResponseRecorder)
	go func() {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("POST", "/submit", nil))
		firstDone <- rec
	}()
	<-enter // the slot is now held

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/submit", nil))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("second request status = %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	if got := gaugeValue(t, reg, "wf_admission_shed_total"); got != 1 {
		t.Fatalf("wf_admission_shed_total = %v, want 1", got)
	}

	close(release)
	if rec := <-firstDone; rec.Code != http.StatusOK {
		t.Fatalf("first request status = %d, want 200", rec.Code)
	}
	// Slot free again: the next request passes (the handler no longer blocks
	// once release is closed).
	rec = httptest.NewRecorder()
	done := make(chan struct{})
	go func() { <-enter; close(done) }()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/submit", nil))
	<-done
	if rec.Code != http.StatusOK {
		t.Fatalf("post-release request status = %d, want 200", rec.Code)
	}
}

// TestAdmissionUnlimitedPassesThrough: limit ≤ 0 must leave the handler
// untouched.
func TestAdmissionUnlimitedPassesThrough(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {})
	rec := httptest.NewRecorder()
	Admission(nil, 0, nil, inner).ServeHTTP(rec, httptest.NewRequest("POST", "/submit", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200", rec.Code)
	}
}
