package server

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"collabwf/internal/obs"
	"collabwf/internal/schema"
	"collabwf/internal/wal"
	"collabwf/internal/workload"
)

// gaugeValue sums a family's series values on the registry.
func gaugeValue(t *testing.T, reg *obs.Registry, name string) float64 {
	t.Helper()
	for _, fam := range reg.Gather() {
		if fam.Name != name {
			continue
		}
		total := 0.0
		for _, s := range fam.Series {
			total += s.Value
		}
		return total
	}
	t.Fatalf("family %s not registered", name)
	return 0
}

// TestCloseClosesSubscriberChannels is the regression test for the shutdown
// bug: Close used to leave subscriber channels open, so a client ranging
// over one hung forever and the wf_subscribers gauge stayed stale.
func TestCloseClosesSubscriberChannels(t *testing.T) {
	reg := obs.NewRegistry()
	c := New("Hiring", workload.Hiring())
	c.Instrument(reg)
	ch, cancel, err := c.Subscribe("hr", 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Subscribe("sue", 8); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit("hr", "clear", nil); err != nil {
		t.Fatal(err)
	}

	done := make(chan int)
	go func() {
		// The ranging consumer: must exit once Close closes the channel.
		got := 0
		for range ch {
			got++
		}
		done <- got
	}()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-done:
		if got != 1 {
			t.Fatalf("consumer received %d notifications, want 1", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ranging consumer still blocked after Close")
	}
	if n := c.Subscribers(); n != 0 {
		t.Fatalf("Subscribers() = %d after Close, want 0", n)
	}
	if g := gaugeValue(t, reg, "wf_subscribers"); g != 0 {
		t.Fatalf("wf_subscribers = %v after Close, want 0", g)
	}
	// cancel after Close must be a safe no-op (the channel is already closed
	// and unregistered; cancel must not double-close or go negative).
	cancel()
	cancel()
	if g := gaugeValue(t, reg, "wf_subscribers"); g != 0 {
		t.Fatalf("wf_subscribers = %v after post-Close cancel, want 0", g)
	}
	if _, _, err := c.Subscribe("hr", 8); err == nil {
		t.Fatal("Subscribe after Close must be rejected")
	}
}

// TestCloseClosesSubscribersDurable runs the same shutdown contract through
// the durable path, where Close additionally drains the commit queue and
// writes the final snapshot before closing the channels.
func TestCloseClosesSubscribersDurable(t *testing.T) {
	c, err := NewDurable("Hiring", workload.Hiring(), DurabilityConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	ch, _, err := c.Subscribe("hr", 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit("hr", "clear", nil); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		for range ch {
		}
		close(done)
	}()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("ranging consumer still blocked after durable Close")
	}
	if err := c.Close(); err != nil {
		t.Fatal("second Close must be a nil no-op:", err)
	}
}

// TestTransitionsIncrementalMatchesRescan pins the polling optimization:
// the cached visible-index answer must equal a brute-force rescan of the
// whole run, for every peer and every from cursor, interleaved with new
// submissions (which extend the cache incrementally).
func TestTransitionsIncrementalMatchesRescan(t *testing.T) {
	prog := workload.Hiring()
	subs := randomWorkload(t, prog, 11, 12)
	c := New("Hiring", prog)

	// bruteForce recomputes the peer's visible transitions from scratch,
	// ignoring the cache — the pre-optimization semantics.
	bruteForce := func(peer schema.Peer, from int) []Notification {
		c.mu.Lock()
		defer c.mu.Unlock()
		var out []Notification
		for idx := 0; idx < c.observable; idx++ {
			if idx >= from && c.run.VisibleAt(idx, peer) {
				out = append(out, c.buildNotification(peer, idx))
			}
		}
		return out
	}

	check := func() {
		for _, peer := range prog.Peers() {
			for from := 0; from <= c.Len()+1; from++ {
				got, err := c.Transitions(peer, from)
				if err != nil {
					t.Fatal(err)
				}
				want := bruteForce(peer, from)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("peer %s from %d:\n got: %+v\nwant: %+v", peer, from, got, want)
				}
			}
		}
	}

	check() // empty run
	for i, s := range subs {
		if _, err := c.Submit(s.peer, s.rule, s.bindings); err != nil {
			t.Fatalf("submission %d: %v", i, err)
		}
		// Poll after every event so the cache is repeatedly extended by one.
		check()
	}
}

// TestCrashDuringGroupCommit is the property test for the batched failure
// path: when the group fsync fails mid-batch, (a) every submitter whose
// record was in flight gets an error, (b) recovery replays exactly the
// durable prefix, and (c) no subscriber ever saw a rolled-back event.
func TestCrashDuringGroupCommit(t *testing.T) {
	prog := workload.Hiring()
	fp := wal.NewFailpoints()
	dir := t.TempDir()
	c, err := NewDurable("Hiring", prog, DurabilityConfig{Dir: dir, Sync: wal.SyncAlways, Failpoints: fp})
	if err != nil {
		t.Fatal(err)
	}
	ch, cancelSub, err := c.Subscribe("hr", 256)
	if err != nil {
		t.Fatal(err)
	}
	defer cancelSub()

	const durablePrefix = 3
	for i := 0; i < durablePrefix; i++ {
		if _, err := c.Submit("hr", "clear", nil); err != nil {
			t.Fatal(err)
		}
	}

	// Slow the next fsync down so every concurrent submitter lands in the
	// same doomed window, then fail it.
	boom := errors.New("EIO mid-batch")
	fp.SlowSync(150 * time.Millisecond)
	fp.FailNextSync(boom)
	const k = 6
	errs := make([]error, k)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.Submit("hr", "clear", nil)
		}(i)
	}
	wg.Wait()
	fp.Reset()

	// (a) Every submitter in the doomed window errored.
	for i, err := range errs {
		if err == nil {
			t.Fatalf("submitter %d resolved durable through the failed group sync", i)
		}
	}
	if got := c.Len(); got != durablePrefix {
		t.Fatalf("Len() = %d after failed batch, want %d", got, durablePrefix)
	}
	// The stall was realigned by the failed submitters; the pipeline works
	// again without outside intervention.
	if err := c.Ready(); err != nil {
		t.Fatalf("coordinator not ready after realign: %v", err)
	}
	if _, err := c.Submit("hr", "clear", nil); err != nil {
		t.Fatalf("submit after realign: %v", err)
	}

	// (c) Notifications cover exactly the released events, in index order —
	// none for a rolled-back event.
	want := 0
	for len(ch) > 0 {
		n := <-ch
		if n.Index != want {
			t.Fatalf("notification index %d, want %d", n.Index, want)
		}
		want++
	}
	if want != durablePrefix+1 {
		t.Fatalf("got %d notifications, want %d", want, durablePrefix+1)
	}

	// (b) Crash (no Close) and recover: exactly the durable prefix replays.
	state := captureState(t, c)
	rc, err := Recover("Hiring", prog, DurabilityConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if got := rc.Len(); got != durablePrefix+1 {
		t.Fatalf("recovered %d events, want %d", got, durablePrefix+1)
	}
	if got := captureState(t, rc); got != state {
		t.Fatalf("recovered state diverged:\n got: %s\nwant: %s", got, state)
	}
}

// TestConcurrentSubmitsReleaseInOrder stresses the pipeline: many
// concurrent durable submitters, every commit grouped, and still a single
// totally-ordered run with contiguous in-order notifications.
func TestConcurrentSubmitsReleaseInOrder(t *testing.T) {
	prog := workload.Hiring()
	dir := t.TempDir()
	c, err := NewDurable("Hiring", prog, DurabilityConfig{Dir: dir, Sync: wal.SyncAlways, SnapshotEvery: 7})
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 8, 5
	ch, cancelSub, err := c.Subscribe("hr", workers*per+8)
	if err != nil {
		t.Fatal(err)
	}
	defer cancelSub()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := c.Submit("hr", "clear", nil); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if got := c.Len(); got != workers*per {
		t.Fatalf("Len() = %d, want %d", got, workers*per)
	}
	next := 0
	for len(ch) > 0 {
		n := <-ch
		if n.Index != next {
			t.Fatalf("notification index %d, want %d (in-order contiguous release)", n.Index, next)
		}
		next++
	}
	if next != workers*per {
		t.Fatalf("received %d notifications, want %d", next, workers*per)
	}
	state := captureState(t, c)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	rc, err := Recover("Hiring", prog, DurabilityConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if got := captureState(t, rc); got != state {
		t.Fatalf("recovered state diverged:\n got: %s\nwant: %s", got, state)
	}
}

// TestAdmissionShedsOverLimit drives the admission middleware directly: with
// the single slot held, the next request is shed with 429 + Retry-After and
// counted on wf_admission_shed_total.
func TestAdmissionShedsOverLimit(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	enter := make(chan struct{})
	release := make(chan struct{})
	h := Admission(m, 1, nil, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		enter <- struct{}{}
		<-release
		w.WriteHeader(http.StatusOK)
	}))

	firstDone := make(chan *httptest.ResponseRecorder)
	go func() {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("POST", "/submit", nil))
		firstDone <- rec
	}()
	<-enter // the slot is now held

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/submit", nil))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("second request status = %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	if got := gaugeValue(t, reg, "wf_admission_shed_total"); got != 1 {
		t.Fatalf("wf_admission_shed_total = %v, want 1", got)
	}

	close(release)
	if rec := <-firstDone; rec.Code != http.StatusOK {
		t.Fatalf("first request status = %d, want 200", rec.Code)
	}
	// Slot free again: the next request passes (the handler no longer blocks
	// once release is closed).
	rec = httptest.NewRecorder()
	done := make(chan struct{})
	go func() { <-enter; close(done) }()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/submit", nil))
	<-done
	if rec.Code != http.StatusOK {
		t.Fatalf("post-release request status = %d, want 200", rec.Code)
	}
}

// TestAdmissionUnlimitedPassesThrough: limit ≤ 0 must leave the handler
// untouched.
func TestAdmissionUnlimitedPassesThrough(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {})
	rec := httptest.NewRecorder()
	Admission(nil, 0, nil, inner).ServeHTTP(rec, httptest.NewRequest("POST", "/submit", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200", rec.Code)
	}
}

// readerLog records what one concurrent reader observed, for the
// prefix-consistency assertions: once an index has been observed with some
// (rule, view) content, every later observation of that index must be
// identical — a rolled-back event surfacing at a reused index would differ.
type readerLog struct {
	seen    map[int]Notification
	maxLen  int
	violate string
}

func (rl *readerLog) observe(ts []Notification, n int) {
	if rl.seen == nil {
		rl.seen = make(map[int]Notification)
	}
	if n < rl.maxLen && rl.violate == "" {
		rl.violate = fmt.Sprintf("len went backwards: %d after %d", n, rl.maxLen)
	}
	if n > rl.maxLen {
		rl.maxLen = n
	}
	for _, t := range ts {
		if prev, ok := rl.seen[t.Index]; ok {
			if !reflect.DeepEqual(prev, t) && rl.violate == "" {
				rl.violate = fmt.Sprintf("index %d changed under the reader:\n was: %+v\n now: %+v", t.Index, prev, t)
			}
			continue
		}
		rl.seen[t.Index] = t
	}
}

// TestConcurrentReadersDuringGroupCommits is the -race stress test of the
// lock-free read path: reader goroutines hammer View/Explain/Transitions/
// Len while writers stream durable group-committed submissions. Asserts
// monotonic, prefix-consistent reads; the race detector asserts the memory
// model.
func TestConcurrentReadersDuringGroupCommits(t *testing.T) {
	prog := workload.Hiring()
	c, err := NewDurable("Hiring", prog, DurabilityConfig{Dir: t.TempDir(), Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const writers, perWriter, readers = 4, 25, 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	logs := make([]readerLog, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(rl *readerLog) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ts, n, err := c.TransitionsAndLen("hr", 0)
				if err != nil {
					t.Error(err)
					return
				}
				rl.observe(ts, n)
				if _, err := c.View("hr"); err != nil {
					t.Error(err)
					return
				}
				if _, err := c.Explain("hr"); err != nil {
					t.Error(err)
					return
				}
			}
		}(&logs[r])
	}
	var werr error
	var werrMu sync.Mutex
	var wwg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wwg.Add(1)
		go func() {
			defer wwg.Done()
			for i := 0; i < perWriter; i++ {
				if _, err := c.Submit("hr", "clear", nil); err != nil {
					werrMu.Lock()
					werr = err
					werrMu.Unlock()
					return
				}
			}
		}()
	}
	wwg.Wait()
	close(stop)
	wg.Wait()
	if werr != nil {
		t.Fatal(werr)
	}
	if got := c.Len(); got != writers*perWriter {
		t.Fatalf("Len() = %d, want %d", got, writers*perWriter)
	}
	// Every reader's record must agree with the final state.
	final, _, err := c.TransitionsAndLen("hr", 0)
	if err != nil {
		t.Fatal(err)
	}
	byIndex := make(map[int]Notification, len(final))
	for _, n := range final {
		byIndex[n.Index] = n
	}
	for r := range logs {
		if logs[r].violate != "" {
			t.Fatalf("reader %d: %s", r, logs[r].violate)
		}
		for idx, seen := range logs[r].seen {
			want, ok := byIndex[idx]
			if !ok {
				t.Fatalf("reader %d saw index %d missing from the final state", r, idx)
			}
			// Views are immutable per index. Because lists may have grown
			// since the reader sampled (closures absorb later lifecycle
			// closes), so assert the subset direction only.
			if seen.View != want.View || seen.Rule != want.Rule || seen.Omega != want.Omega {
				t.Fatalf("reader %d, index %d diverged from final state:\n seen: %+v\n want: %+v", r, idx, seen, want)
			}
		}
	}
}

// TestRollbackDuringReadsInvisible extends the crash-during-group-commit
// property with concurrent readers: while a doomed batch is in flight (slow
// fsync, then EIO), readers poll continuously — and must never observe any
// of the rolled-back events, even though their indices are later reused by
// new accepted submissions with different payloads.
func TestRollbackDuringReadsInvisible(t *testing.T) {
	prog := workload.Hiring()
	fp := wal.NewFailpoints()
	c, err := NewDurable("Hiring", prog, DurabilityConfig{Dir: t.TempDir(), Sync: wal.SyncAlways, Failpoints: fp})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const durablePrefix = 3
	for i := 0; i < durablePrefix; i++ {
		if _, err := c.Submit("hr", "clear", nil); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	const readers = 3
	logs := make([]readerLog, readers)
	var rwg sync.WaitGroup
	for r := 0; r < readers; r++ {
		rwg.Add(1)
		go func(rl *readerLog) {
			defer rwg.Done()
			for {
				ts, n, err := c.TransitionsAndLen("hr", 0)
				if err != nil {
					t.Error(err)
					return
				}
				rl.observe(ts, n)
				select {
				case <-stop:
					return
				default:
				}
			}
		}(&logs[r])
	}

	// Doom the next batch: every submitter in the slow-sync window fails and
	// rolls back. Readers are polling throughout.
	boom := errors.New("EIO mid-batch")
	fp.SlowSync(100 * time.Millisecond)
	fp.FailNextSync(boom)
	const doomed = 5
	var swg sync.WaitGroup
	for i := 0; i < doomed; i++ {
		swg.Add(1)
		go func() {
			defer swg.Done()
			if _, err := c.Submit("hr", "clear", nil); err == nil {
				t.Error("doomed submission resolved durable")
			}
		}()
	}
	swg.Wait()
	fp.Reset()
	if got := c.Len(); got != durablePrefix {
		t.Fatalf("Len() = %d after failed batch, want %d", got, durablePrefix)
	}
	// Reuse the rolled-back indices with fresh, successful submissions.
	for i := 0; i < doomed; i++ {
		if _, err := c.Submit("hr", "clear", nil); err != nil {
			t.Fatalf("submit after realign: %v", err)
		}
	}
	close(stop)
	rwg.Wait()

	final, n, err := c.TransitionsAndLen("hr", 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != durablePrefix+doomed {
		t.Fatalf("final len %d, want %d", n, durablePrefix+doomed)
	}
	byIndex := make(map[int]Notification, len(final))
	for _, fn := range final {
		byIndex[fn.Index] = fn
	}
	for r := range logs {
		if logs[r].violate != "" {
			t.Fatalf("reader %d: %s", r, logs[r].violate)
		}
		for idx, seen := range logs[r].seen {
			want, ok := byIndex[idx]
			if !ok || seen.View != want.View || seen.Rule != want.Rule || seen.Omega != want.Omega {
				t.Fatalf("reader %d observed a rolled-back event at index %d:\n seen: %+v\n final: %+v (present %v)",
					r, idx, seen, want, ok)
			}
		}
	}
}
