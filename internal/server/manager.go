package server

import (
	"fmt"
	"hash/fnv"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"sync"
	"time"

	"collabwf/internal/obs"
	"collabwf/internal/program"
	"collabwf/internal/schema"
	"collabwf/internal/wal"
)

// DefaultRun is the id of the run that legacy single-run paths alias to.
const DefaultRun = "default"

// runIDPattern validates run ids: path- and filesystem-safe, bounded, no
// leading separator characters.
var runIDPattern = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9_.-]{0,63}$`)

// archivedMarker is the file dropped into an archived run's directory so
// the startup scan skips it (the WAL and final snapshot stay on disk for
// offline audit).
const archivedMarker = "archived"

// ManagerConfig configures a run fleet.
type ManagerConfig struct {
	// Workflow names the program (every shard's coordinator name).
	Workflow string
	// Prog is the workflow program all runs execute.
	Prog *program.Program
	// DataDir is the fleet's durable root: the default run lives at the
	// root itself (so a pre-fleet single-run directory recovers unchanged)
	// and named runs under DataDir/runs/<id>/. Empty runs the whole fleet
	// in memory.
	DataDir string
	// Durability is the template for every shard's durable configuration;
	// Dir and RunID are filled in per shard, Failpoints per run via the
	// Failpoints hook below. Ignored when DataDir is empty.
	Durability DurabilityConfig
	// HTTP is the template for every shard's handler options; Metrics is
	// replaced per shard with its run-labeled handle when Registry is set.
	HTTP HTTPOptions
	// Registry, when non-nil, instruments every shard in the fleet metric
	// mode (coordinator families labeled by run) and registers the
	// aggregate families (wf_runs_active, wf_runs_created_total,
	// wf_runs_archived_total, wf_fleet_events).
	Registry *obs.Registry
	// Logger, when non-nil, is attached to every shard.
	Logger *slog.Logger
	// Failpoints, when non-nil, supplies per-run WAL fault injection
	// (tests and the E20 stall-isolation experiment); called once per
	// shard with its run id.
	Failpoints func(run string) *wal.Failpoints
	// Guards, when non-empty, installs the given transparency guards
	// (peer → h) on every *fresh* run — recovered runs keep their
	// persisted guards.
	Guards map[string]int
	// LockedReads routes every shard's reads through its coordinator mutex
	// instead of the lock-free snapshot (the -locked-reads escape hatch).
	LockedReads bool
}

// shard is one run's slice of the fleet: its own coordinator (lock,
// observable prefix, explainer caches, WAL segment) and its own handler.
type shard struct {
	id string
	c  *Coordinator
	h  http.Handler
}

// managerBuckets is the shard-map partition count: requests hash their run
// id to a bucket, so create/archive of one run never contends with routing
// to another.
const managerBuckets = 16

type managerBucket struct {
	mu     sync.RWMutex
	shards map[string]*shard
}

// Manager serves a fleet of workflow runs: requests are hash-routed to
// per-run shards, each an independent Coordinator with its own lock,
// observable-prefix snapshot, explainer caches and WAL directory. The
// lifecycle API creates, lists and archives runs at runtime; legacy
// single-run paths alias to the default run.
type Manager struct {
	cfg     ManagerConfig
	start   time.Time
	buckets [managerBuckets]managerBucket

	// lifecycle serializes create/archive against Close and carries the
	// lifetime tallies the fleet gauges report.
	lifecycle sync.Mutex
	created   int
	archived  int
	closed    bool

	runsActive   *obs.Gauge
	runsCreated  *obs.Counter
	runsArchived *obs.Counter
	fleetEvents  *obs.Gauge
}

// NewManager recovers (or starts) a run fleet: the default run from the
// data-dir root, then every non-archived directory under DataDir/runs/ in
// sorted order. A fleet with no data dir starts with just the in-memory
// default run.
func NewManager(cfg ManagerConfig) (*Manager, error) {
	if cfg.Prog == nil {
		return nil, fmt.Errorf("server: manager requires a program")
	}
	if cfg.Workflow == "" {
		cfg.Workflow = "workflow"
	}
	m := &Manager{cfg: cfg, start: time.Now()}
	for i := range m.buckets {
		m.buckets[i].shards = make(map[string]*shard)
	}
	if reg := cfg.Registry; reg != nil {
		m.runsActive = reg.Gauge("wf_runs_active",
			"Live workflow runs (shards) served by the manager.")
		m.runsCreated = reg.Counter("wf_runs_created_total",
			"Runs created over the manager's lifetime (recovered runs included).")
		m.runsArchived = reg.Counter("wf_runs_archived_total",
			"Runs archived (final snapshot written, WAL closed) over the manager's lifetime.")
		m.fleetEvents = reg.Gauge("wf_fleet_events",
			"Released events across every live run — the fleet-wide total of the per-run wf_run_events series.")
		reg.OnGather(func() {
			total := 0
			for _, s := range m.allShards() {
				total += s.c.Len()
			}
			m.fleetEvents.Set(float64(total))
		})
	}
	if _, err := m.addRun(DefaultRun); err != nil {
		return nil, err
	}
	// Recover the named runs. ReadDir returns entries sorted by name, so
	// recovery order is deterministic.
	if cfg.DataDir != "" {
		entries, err := os.ReadDir(filepath.Join(cfg.DataDir, "runs"))
		if err != nil && !os.IsNotExist(err) {
			m.Close()
			return nil, fmt.Errorf("server: scanning run directories: %w", err)
		}
		for _, ent := range entries {
			if !ent.IsDir() {
				continue
			}
			id := ent.Name()
			if !runIDPattern.MatchString(id) {
				m.Close()
				return nil, fmt.Errorf("server: run directory %q is not a valid run id", id)
			}
			if _, err := os.Stat(filepath.Join(cfg.DataDir, "runs", id, archivedMarker)); err == nil {
				continue // archived: skip, keep on disk for offline audit
			}
			if _, err := m.addRun(id); err != nil {
				m.Close()
				return nil, err
			}
		}
	}
	return m, nil
}

// bucket returns the shard bucket for a run id (FNV-1a hash routing).
func (m *Manager) bucket(id string) *managerBucket {
	h := fnv.New32a()
	h.Write([]byte(id))
	return &m.buckets[h.Sum32()%managerBuckets]
}

// runDir returns the durable directory of a run ("" for in-memory fleets).
func (m *Manager) runDir(id string) string {
	if m.cfg.DataDir == "" {
		return ""
	}
	if id == DefaultRun {
		return m.cfg.DataDir
	}
	return filepath.Join(m.cfg.DataDir, "runs", id)
}

// addRun constructs and registers a shard for id. The bucket lock is held
// across construction so a concurrent create of the same id waits and then
// fails on the exists check rather than double-recovering one directory.
func (m *Manager) addRun(id string) (*shard, error) {
	if !runIDPattern.MatchString(id) {
		return nil, fmt.Errorf("server: invalid run id %q", id)
	}
	b := m.bucket(id)
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.shards[id]; ok {
		return nil, fmt.Errorf("server: run %q already exists", id)
	}
	s, err := m.newShard(id)
	if err != nil {
		return nil, err
	}
	b.shards[id] = s
	m.lifecycle.Lock()
	m.created++
	active := m.created - m.archived
	m.lifecycle.Unlock()
	if m.runsCreated != nil {
		m.runsCreated.Inc()
		// The bucket lock is still held: derive the active count from the
		// lifecycle tallies rather than re-walking the buckets via allShards,
		// which would self-deadlock on this bucket.
		m.runsActive.Set(float64(active))
	}
	return s, nil
}

// newShard builds one run's coordinator + handler.
func (m *Manager) newShard(id string) (*shard, error) {
	var c *Coordinator
	dir := m.runDir(id)
	fresh := true
	if dir == "" {
		c = New(m.cfg.Workflow, m.cfg.Prog)
		c.SetRunID(id)
		if m.cfg.Durability.DecisionLog != nil {
			c.SetDecisionLog(m.cfg.Durability.DecisionLog)
		}
	} else {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("server: creating run directory: %w", err)
		}
		cfg := m.cfg.Durability
		cfg.Dir = dir
		cfg.RunID = id
		cfg.Logger = m.cfg.Logger
		if m.cfg.Failpoints != nil {
			cfg.Failpoints = m.cfg.Failpoints(id)
		}
		var err error
		c, err = Recover(m.cfg.Workflow, m.cfg.Prog, cfg)
		if err != nil {
			return nil, fmt.Errorf("server: recovering run %q: %w", id, err)
		}
		fresh = c.Len() == 0 && len(c.Guards()) == 0
	}
	if m.cfg.Logger != nil {
		c.SetLogger(m.cfg.Logger)
	}
	if m.cfg.LockedReads {
		c.SetLockedReads(true)
	}
	opts := m.cfg.HTTP
	if m.cfg.Registry != nil {
		opts.Metrics = c.InstrumentRun(m.cfg.Registry, id)
	}
	if fresh {
		for peer, h := range m.cfg.Guards {
			if err := c.Guard(schema.Peer(peer), h); err != nil {
				c.Close()
				return nil, fmt.Errorf("server: guarding run %q: %w", id, err)
			}
		}
	}
	return &shard{id: id, c: c, h: NewHandler(c, opts)}, nil
}

// get returns the live shard for id.
func (m *Manager) get(id string) (*shard, bool) {
	b := m.bucket(id)
	b.mu.RLock()
	s, ok := b.shards[id]
	b.mu.RUnlock()
	return s, ok
}

// allShards snapshots the live shards, sorted by id.
func (m *Manager) allShards() []*shard {
	var out []*shard
	for i := range m.buckets {
		b := &m.buckets[i]
		b.mu.RLock()
		for _, s := range b.shards {
			out = append(out, s)
		}
		b.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// CreateRun creates (and, when durable, persists) a new run shard.
func (m *Manager) CreateRun(id string) error {
	m.lifecycle.Lock()
	closed := m.closed
	m.lifecycle.Unlock()
	if closed {
		return fmt.Errorf("server: manager is shut down")
	}
	_, err := m.addRun(id)
	return err
}

// ArchiveRun shuts a run down: a final snapshot is written, its WAL closed,
// and its directory marked so the next startup scan skips it. The default
// run cannot be archived (legacy paths depend on it).
func (m *Manager) ArchiveRun(id string) error {
	if id == DefaultRun {
		return fmt.Errorf("server: the default run cannot be archived")
	}
	b := m.bucket(id)
	b.mu.Lock()
	s, ok := b.shards[id]
	if ok {
		delete(b.shards, id)
	}
	b.mu.Unlock()
	if !ok {
		return fmt.Errorf("server: unknown run %q", id)
	}
	err := s.c.Close()
	if dir := m.runDir(id); dir != "" {
		if merr := os.WriteFile(filepath.Join(dir, archivedMarker), []byte(time.Now().UTC().Format(time.RFC3339)+"\n"), 0o644); merr != nil && err == nil {
			err = fmt.Errorf("server: marking run %q archived: %w", id, merr)
		}
	}
	m.lifecycle.Lock()
	m.archived++
	m.lifecycle.Unlock()
	if m.runsArchived != nil {
		m.runsArchived.Inc()
		m.runsActive.Set(float64(len(m.allShards())))
	}
	return err
}

// Run returns the coordinator of a live run (tests, benches, the CLI).
func (m *Manager) Run(id string) (*Coordinator, bool) {
	s, ok := m.get(id)
	if !ok {
		return nil, false
	}
	return s.c, true
}

// Default returns the default run's coordinator.
func (m *Manager) Default() *Coordinator {
	c, _ := m.Run(DefaultRun)
	return c
}

// Runs reports the live fleet, sorted by run id.
func (m *Manager) Runs() []RunStatus {
	shards := m.allShards()
	out := make([]RunStatus, len(shards))
	for i, s := range shards {
		out[i] = runStatus(s.id, s.c)
	}
	return out
}

// RunsStatus assembles the fleet block for /statusz.
func (m *Manager) RunsStatus() *RunsStatusz {
	runs := m.Runs()
	m.lifecycle.Lock()
	created, archived := m.created, m.archived
	m.lifecycle.Unlock()
	st := &RunsStatusz{Active: len(runs), Created: created, Archived: archived, Runs: runs}
	for _, r := range runs {
		st.Events += r.Events
	}
	return st
}

// Close shuts every shard down (final snapshots + WAL close). Idempotent;
// the first error wins.
func (m *Manager) Close() error {
	m.lifecycle.Lock()
	if m.closed {
		m.lifecycle.Unlock()
		return nil
	}
	m.closed = true
	m.lifecycle.Unlock()
	var first error
	for _, s := range m.allShards() {
		if err := s.c.Close(); err != nil && first == nil {
			first = fmt.Errorf("server: closing run %q: %w", s.id, err)
		}
	}
	return first
}
