package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"collabwf/internal/core"
	"collabwf/internal/data"
	"collabwf/internal/design"
	"collabwf/internal/prof"
	"collabwf/internal/schema"
	"collabwf/internal/workload"
)

// TestProfilerScriptedSession drives the guarded scripted session of
// TestGuardRejectsViolations under an installed profiler and checks that
// the /debug/rules ranking, the /statusz rule_engine block and the raw
// snapshot all agree with what the session actually did.
func TestProfilerScriptedSession(t *testing.T) {
	staged, err := design.Staged(workload.Hiring(), "sue")
	if err != nil {
		t.Fatal(err)
	}
	c := New("Staged", staged)
	profiler := prof.New()
	c.SetProfiler(profiler)
	if c.Profiler() != profiler {
		t.Fatal("Profiler() does not return the installed profiler")
	}
	if err := c.Guard("sue", 2); err != nil {
		t.Fatal(err)
	}
	mustSubmit := func(peer schema.Peer, rule string, bind map[string]data.Value) *SubmitResult {
		t.Helper()
		res, err := c.Submit(peer, rule, bind)
		if err != nil {
			t.Fatalf("%s: %v", rule, err)
		}
		return res
	}
	mustSubmit("hr", "stage_refresh_hr", nil)
	res := mustSubmit("hr", "clear", nil)
	cand := data.Value(strings.TrimSuffix(strings.TrimPrefix(res.Updates[0], "+Cleared("), ")"))
	mustSubmit("cfo", "stage_refresh_cfo", nil)
	mustSubmit("cfo", "cfo_ok", map[string]data.Value{"x": cand})
	mustSubmit("ceo", "approve", map[string]data.Value{"x": cand})
	if _, err := c.Submit("hr", "hire", map[string]data.Value{"x": cand}); err == nil {
		t.Fatal("over-budget hire must be rejected by the guard")
	}

	// A certification folds the decider searches into the same profiler
	// (the verdict itself is irrelevant here; small caps keep it quick).
	_ = c.Certify(context.Background(), "sue", 2,
		core.Options{Profiler: profiler, PoolFresh: 2, MaxTuplesPerRelation: 1})

	snap := profiler.Snapshot()
	// Six events were appended: five accepted plus the hire the guard
	// rolled back after appending — fires count appends, not survivors.
	if snap.Totals.Fires != 6 {
		t.Fatalf("fires = %d, want 6 (5 accepted + 1 rolled back)", snap.Totals.Fires)
	}
	if snap.Totals.Replays < 6 {
		t.Fatalf("replays = %d, want ≥ 6 (one ground re-check per append)", snap.Totals.Replays)
	}
	if snap.Totals.Attempts == 0 || snap.Totals.EvalNS == 0 {
		t.Fatalf("decider searches attributed no evaluation work: %+v", snap.Totals)
	}
	fires := map[string]int64{}
	for _, r := range snap.Rules {
		fires[r.Rule] = r.Fires
	}
	for _, rule := range []string{"stage_refresh_hr", "clear", "stage_refresh_cfo", "cfo_ok", "approve", "hire"} {
		if fires[rule] != 1 {
			t.Fatalf("rule %s fires = %d, want 1 (fires=%v)", rule, fires[rule], fires)
		}
	}
	// One guard check per submission, and exactly the hire violated.
	var sue *prof.GuardCost
	for i := range snap.Guards {
		if snap.Guards[i].Peer == "sue" {
			sue = &snap.Guards[i]
		}
	}
	if sue == nil || sue.Checks != 6 || sue.Violations != 1 {
		t.Fatalf("guard stats = %+v, want 6 checks / 1 violation for sue", snap.Guards)
	}
	phases := map[string]bool{}
	for _, ph := range snap.Phases {
		phases[ph.Phase] = true
	}
	if !phases["engine"] || !phases["decider.silent_runs"] {
		t.Fatalf("phases = %+v, want engine and decider.silent_runs", snap.Phases)
	}

	// /debug/rules must agree with the snapshot: same rule set, ranked,
	// fires adding up, ?top bounding without changing matched.
	h := prof.RulesHandler(profiler)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/rules", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/rules status %d", rec.Code)
	}
	var listing struct {
		Enabled bool `json:"enabled"`
		Matched int  `json:"matched"`
		Totals  struct {
			Fires int64 `json:"fires"`
		} `json:"totals"`
		Rules []struct {
			Rule  string `json:"rule"`
			Fires int64  `json:"fires"`
			CumNS int64  `json:"cum_ns"`
		} `json:"rules"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &listing); err != nil {
		t.Fatalf("/debug/rules not JSON: %v", err)
	}
	if !listing.Enabled || listing.Matched != len(snap.Rules) || listing.Totals.Fires != 6 {
		t.Fatalf("/debug/rules = %+v, snapshot has %d rules", listing, len(snap.Rules))
	}
	var sumFires int64
	for i, r := range listing.Rules {
		sumFires += r.Fires
		if i > 0 && r.CumNS > listing.Rules[i-1].CumNS {
			t.Fatalf("/debug/rules not ranked by cum_ns: %+v", listing.Rules)
		}
	}
	if sumFires != 6 {
		t.Fatalf("/debug/rules fires sum to %d, want 6", sumFires)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/rules?top=2", nil))
	var bounded struct {
		Matched int               `json:"matched"`
		Rules   []json.RawMessage `json:"rules"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &bounded); err != nil {
		t.Fatal(err)
	}
	if bounded.Matched != len(snap.Rules) || len(bounded.Rules) != 2 {
		t.Fatalf("top=2 listing = matched %d, %d rules", bounded.Matched, len(bounded.Rules))
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/rules?top=zero", nil))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad top: status %d, want 400", rec.Code)
	}

	// /statusz condenses the same numbers into the rule_engine block.
	rec = httptest.NewRecorder()
	StatuszHandler(c, nil).ServeHTTP(rec, httptest.NewRequest("GET", "/statusz", nil))
	var st Statusz
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("/statusz not JSON: %v", err)
	}
	if !st.RuleEngine.Enabled || st.RuleEngine.Fires != 6 || st.RuleEngine.Attempts != snap.Totals.Attempts {
		t.Fatalf("rule_engine block = %+v", st.RuleEngine)
	}
	if len(st.RuleEngine.TopRules) == 0 || len(st.RuleEngine.TopRules) > 3 {
		t.Fatalf("rule_engine top rules = %+v, want 1..3", st.RuleEngine.TopRules)
	}
}

// TestStatuszProfilerDisabled: without SetProfiler the block reports
// enabled: false instead of vanishing, so dashboards can key on it.
func TestStatuszProfilerDisabled(t *testing.T) {
	c := New("Hiring", workload.Hiring())
	rec := httptest.NewRecorder()
	StatuszHandler(c, nil).ServeHTTP(rec, httptest.NewRequest("GET", "/statusz", nil))
	var st Statusz
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("/statusz not JSON: %v", err)
	}
	if st.RuleEngine.Enabled || st.RuleEngine.Fires != 0 {
		t.Fatalf("rule_engine block = %+v, want disabled zero block", st.RuleEngine)
	}
}

// TestCertifyProfileParam: /certify?profile=1 attaches a request-scoped
// cost snapshot to both verdicts; bad values are 400s. Chain(1) certifies
// quickly with the handler's default search options (the trace test's
// trick).
func TestCertifyProfileParam(t *testing.T) {
	prog, _, err := workload.Chain(1)
	if err != nil {
		t.Fatal(err)
	}
	c := New("Chain", prog)
	h := Handler(c)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/certify?peer=p&h=1&profile=1", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("certify status %d: %s", rec.Code, rec.Body.String())
	}
	var out struct {
		Certified bool           `json:"certified"`
		Profile   *prof.Snapshot `json:"profile"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if !out.Certified || out.Profile == nil || !out.Profile.Enabled {
		t.Fatalf("profiled certify = %+v", out)
	}
	if out.Profile.Totals.Attempts == 0 {
		t.Fatalf("profiled certify attributed no attempts: %+v", out.Profile.Totals)
	}

	// The error verdict carries the profile too (unknown peer fails fast).
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/certify?peer=nobody&h=1&profile=1", nil))
	if rec.Code != http.StatusConflict {
		t.Fatalf("unknown-peer status %d, want 409", rec.Code)
	}
	var failed struct {
		Error   string         `json:"error"`
		Profile *prof.Snapshot `json:"profile"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &failed); err != nil {
		t.Fatal(err)
	}
	if failed.Error == "" || failed.Profile == nil || !failed.Profile.Enabled {
		t.Fatalf("profiled 409 = %+v", failed)
	}

	// Without the parameter no profile is attached.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/certify?peer=p&h=1", nil))
	var plain map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &plain); err != nil {
		t.Fatal(err)
	}
	if _, ok := plain["profile"]; ok {
		t.Fatalf("unprofiled certify leaked a profile: %v", plain)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/certify?peer=p&h=1&profile=yes", nil))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad profile param: status %d, want 400", rec.Code)
	}
}
