package server

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"collabwf/internal/data"
	"collabwf/internal/design"
	"collabwf/internal/program"
	"collabwf/internal/schema"
	"collabwf/internal/wal"
	"collabwf/internal/workload"
)

// submission is one recorded call to the public Submit API.
type submission struct {
	peer     schema.Peer
	rule     string
	bindings map[string]data.Value
}

// randomWorkload derives a deterministic pseudo-random feasible submission
// sequence by walking a shadow run of the program.
func randomWorkload(t *testing.T, p *program.Program, seed int64, steps int) []submission {
	t.Helper()
	r := program.NewRun(p)
	rng := rand.New(rand.NewSource(seed))
	var subs []submission
	for len(subs) < steps {
		cands := r.Candidates(8)
		if len(cands) == 0 {
			break
		}
		c := cands[rng.Intn(len(cands))]
		bind := make(map[string]data.Value, len(c.Val))
		for k, v := range c.Val {
			bind[k] = v
		}
		if _, err := r.Fire(c); err != nil {
			continue
		}
		subs = append(subs, submission{peer: c.Rule.Peer, rule: c.Rule.Name, bindings: bind})
	}
	if len(subs) < steps {
		t.Fatalf("workload exhausted after %d steps", len(subs))
	}
	return subs
}

// captureState fingerprints everything the ISSUE's acceptance criterion
// cares about: the run (trace), every peer's view, and every peer's
// minimal scenario.
func captureState(t *testing.T, c *Coordinator) string {
	t.Helper()
	var b strings.Builder
	if err := c.Trace().Write(&b); err != nil {
		t.Fatal(err)
	}
	for _, p := range c.prog.Peers() {
		v, err := c.View(p)
		if err != nil {
			t.Fatal(err)
		}
		sc, err := c.Scenario(p)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&b, "%s view=%s scenario=%v\n", p, v, sc)
	}
	return b.String()
}

func mustSubmitAll(t *testing.T, c *Coordinator, subs []submission) {
	t.Helper()
	for i, s := range subs {
		if _, err := c.Submit(s.peer, s.rule, s.bindings); err != nil {
			t.Fatalf("submission %d (%s/%s): %v", i, s.peer, s.rule, err)
		}
	}
}

// appendGarbage simulates a crash mid-append: a torn, non-JSON record
// fragment at the end of the WAL.
func appendGarbage(t *testing.T, dir string) {
	t.Helper()
	f, err := os.OpenFile(filepath.Join(dir, "wal.log"), os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":999,"event":{"ru`); err != nil {
		t.Fatal(err)
	}
	f.Close()
}

// TestCrashRecoveryAfterEveryEvent is the crash-recovery property test of
// the acceptance criteria: for a random workload, kill the server after
// every accepted event (leaving a torn trailing record behind, as a real
// crash would), recover, finish the workload, and require the final run,
// views and minimal scenarios to be identical to the uninterrupted run's.
func TestCrashRecoveryAfterEveryEvent(t *testing.T) {
	prog := workload.Hiring()
	subs := randomWorkload(t, prog, 42, 10)

	ref, err := NewDurable("Hiring", prog, DurabilityConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	mustSubmitAll(t, ref, subs)
	want := captureState(t, ref)
	if err := ref.Close(); err != nil {
		t.Fatal(err)
	}

	for k := 1; k <= len(subs); k++ {
		dir := t.TempDir()
		cfg := DurabilityConfig{Dir: dir, SnapshotEvery: 3}
		c, err := NewDurable("Hiring", prog, cfg)
		if err != nil {
			t.Fatal(err)
		}
		mustSubmitAll(t, c, subs[:k])
		// Crash: no Close, no final snapshot, torn bytes on disk.
		appendGarbage(t, dir)
		rc, err := Recover("Hiring", prog, cfg)
		if err != nil {
			t.Fatalf("crash after event %d: %v", k, err)
		}
		if rc.Len() != k {
			t.Fatalf("crash after event %d: recovered %d events", k, rc.Len())
		}
		mustSubmitAll(t, rc, subs[k:])
		if got := captureState(t, rc); got != want {
			t.Fatalf("crash after event %d: state diverged:\n got: %s\nwant: %s", k, got, want)
		}
		if err := rc.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRecoverAfterCloseUsesSnapshotOnly checks the clean-shutdown path: a
// Close writes a final snapshot, and recovery from it restores the run
// without replaying any WAL tail.
func TestRecoverAfterCloseUsesSnapshotOnly(t *testing.T) {
	prog := workload.Hiring()
	subs := randomWorkload(t, prog, 7, 6)
	dir := t.TempDir()
	c, err := NewDurable("Hiring", prog, DurabilityConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	mustSubmitAll(t, c, subs)
	want := captureState(t, c)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(subs[0].peer, subs[0].rule, subs[0].bindings); err == nil {
		t.Fatal("submit after Close must be rejected")
	}
	if err := c.Ready(); err == nil {
		t.Fatal("closed coordinator must not be ready")
	}

	l, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if snap := l.LoadedSnapshot(); snap == nil || snap.Len != len(subs) {
		t.Fatalf("final snapshot=%+v", snap)
	}
	if len(l.LoadedTail()) != 0 {
		t.Fatalf("WAL tail has %d records after a final snapshot", len(l.LoadedTail()))
	}
	l.Close()

	rc, err := Recover("Hiring", prog, DurabilityConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if got := captureState(t, rc); got != want {
		t.Fatalf("state diverged:\n got: %s\nwant: %s", got, want)
	}
}

// TestWALFailureRejectsAndRollsBack: a WAL write failure must look to the
// client exactly like a guard rejection — error returned, run unchanged,
// no notification — and the coordinator must keep working afterwards,
// producing the same run the uninterrupted execution would have.
func TestWALFailureRejectsAndRollsBack(t *testing.T) {
	prog := workload.Hiring()
	fp := wal.NewFailpoints()
	dir := t.TempDir()
	c, err := NewDurable("Hiring", prog, DurabilityConfig{Dir: dir, Failpoints: fp})
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel, err := c.Subscribe("hr", 8)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	if _, err := c.Submit("hr", "clear", nil); err != nil {
		t.Fatal(err)
	}
	<-ch

	fp.TornWrite(1, 5)
	if _, err := c.Submit("hr", "clear", nil); err == nil {
		t.Fatal("submit over a failing WAL must be rejected")
	}
	if c.Len() != 1 {
		t.Fatalf("rolled-back run has %d events", c.Len())
	}
	if len(ch) != 0 {
		t.Fatal("rejected event must not notify")
	}
	if err := c.Ready(); err != nil {
		t.Fatalf("repaired WAL must stay ready: %v", err)
	}

	// The retry succeeds and lands durably.
	res, err := c.Submit("hr", "clear", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Index != 1 {
		t.Fatalf("retry landed at %d", res.Index)
	}
	want := captureState(t, c)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	rc, err := Recover("Hiring", prog, DurabilityConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if got := captureState(t, rc); got != want {
		t.Fatalf("state diverged after torn write:\n got: %s\nwant: %s", got, want)
	}
}

// TestGuardPersistedAcrossRecovery: guards are part of the durable state;
// a recovered coordinator keeps rejecting what the original would have.
func TestGuardPersistedAcrossRecovery(t *testing.T) {
	staged, err := design.Staged(workload.Hiring(), "sue")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	c, err := NewDurable("Staged", staged, DurabilityConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Guard("sue", 2); err != nil {
		t.Fatal(err)
	}
	mustSubmit := func(c *Coordinator, peer schema.Peer, rule string, bind map[string]data.Value) *SubmitResult {
		t.Helper()
		res, err := c.Submit(peer, rule, bind)
		if err != nil {
			t.Fatalf("%s: %v", rule, err)
		}
		return res
	}
	mustSubmit(c, "hr", "stage_refresh_hr", nil)
	res := mustSubmit(c, "hr", "clear", nil)
	cand := data.Value(strings.TrimSuffix(strings.TrimPrefix(res.Updates[0], "+Cleared("), ")"))
	mustSubmit(c, "cfo", "stage_refresh_cfo", nil)

	// Crash without Close; recover and continue.
	rc, err := Recover("Staged", staged, DurabilityConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if rc.Len() != 3 {
		t.Fatalf("recovered %d events", rc.Len())
	}
	mustSubmit(rc, "cfo", "cfo_ok", map[string]data.Value{"x": cand})
	mustSubmit(rc, "ceo", "approve", map[string]data.Value{"x": cand})
	before := rc.Len()
	if _, err := rc.Submit("hr", "hire", map[string]data.Value{"x": cand}); err == nil {
		t.Fatal("recovered coordinator must still enforce the guard")
	}
	if rc.Len() != before {
		t.Fatal("rejected event must not remain in the run")
	}
}

// TestRecoverRejectsTamperedLog: a WAL record that fails the run
// conditions (here: an unknown rule) aborts recovery instead of silently
// diverging.
func TestRecoverRejectsTamperedLog(t *testing.T) {
	prog := workload.Hiring()
	dir := t.TempDir()
	c, err := NewDurable("Hiring", prog, DurabilityConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit("hr", "clear", nil); err != nil {
		t.Fatal(err)
	}
	c.Close()
	f, err := os.OpenFile(filepath.Join(dir, "wal.log"), os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// Snapshot covers event 0, so forge the next record.
	fmt.Fprintln(f, `{"seq":1,"event":{"rule":"no_such_rule","valuation":{}}}`)
	f.Close()
	if _, err := Recover("Hiring", prog, DurabilityConfig{Dir: dir}); err == nil {
		t.Fatal("tampered WAL must be rejected")
	}
}

// TestEmptyRunViewAndTransitions pins the empty-run behavior: before any
// submission, View answers with the initial-instance view (ViewAt −1) and
// Transitions with an empty list — no panic, no error.
func TestEmptyRunViewAndTransitions(t *testing.T) {
	c := New("Hiring", workload.Hiring())
	v, err := c.View("sue")
	if err != nil {
		t.Fatal(err)
	}
	if v != "∅" {
		t.Fatalf("empty-run view = %q, want the initial instance's", v)
	}
	ts, err := c.Transitions("sue", 0)
	if err != nil || len(ts) != 0 {
		t.Fatalf("transitions=%v err=%v", ts, err)
	}
	if _, err := c.Scenario("sue"); err != nil {
		t.Fatal(err)
	}
}

// TestGuardRejectionLeavesNoTrace asserts the rollback contract of
// Coordinator.rollbackTo: a rejected submission leaves the run length,
// every subscriber channel, the dropped counter, and every peer's
// explanation answers exactly as they were — rejected events never notify.
func TestGuardRejectionLeavesNoTrace(t *testing.T) {
	staged, err := design.Staged(workload.Hiring(), "sue")
	if err != nil {
		t.Fatal(err)
	}
	c := New("Staged", staged)
	if err := c.Guard("sue", 2); err != nil {
		t.Fatal(err)
	}
	ch, cancel, err := c.Subscribe("sue", 8)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	mustSubmit := func(peer schema.Peer, rule string, bind map[string]data.Value) *SubmitResult {
		t.Helper()
		res, err := c.Submit(peer, rule, bind)
		if err != nil {
			t.Fatalf("%s: %v", rule, err)
		}
		return res
	}
	mustSubmit("hr", "stage_refresh_hr", nil)
	res := mustSubmit("hr", "clear", nil)
	cand := data.Value(strings.TrimSuffix(strings.TrimPrefix(res.Updates[0], "+Cleared("), ")"))
	mustSubmit("cfo", "stage_refresh_cfo", nil)
	mustSubmit("cfo", "cfo_ok", map[string]data.Value{"x": cand})
	mustSubmit("ceo", "approve", map[string]data.Value{"x": cand})

	// Materialize explainer state for several peers, then fingerprint.
	for _, p := range []schema.Peer{"sue", "hr", "ceo"} {
		if _, err := c.Explain(p); err != nil {
			t.Fatal(err)
		}
	}
	wantLen := c.Len()
	wantDropped := c.Dropped()
	wantQueued := len(ch)
	wantState := captureState(t, c)

	if _, err := c.Submit("hr", "hire", map[string]data.Value{"x": cand}); err == nil {
		t.Fatal("over-budget hire must be rejected by the guard")
	}

	if c.Len() != wantLen {
		t.Fatalf("Len %d, want %d", c.Len(), wantLen)
	}
	if c.Dropped() != wantDropped {
		t.Fatalf("Dropped %d, want %d", c.Dropped(), wantDropped)
	}
	if len(ch) != wantQueued {
		t.Fatalf("subscriber queue %d, want %d: rejected events must not notify", len(ch), wantQueued)
	}
	if got := captureState(t, c); got != wantState {
		t.Fatalf("explanations changed across a rejection:\n got: %s\nwant: %s", got, wantState)
	}
	// And the coordinator still works.
	for _, p := range []schema.Peer{"sue", "hr", "ceo"} {
		if _, err := c.Explain(p); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSnapshotKeepsTailShort: with automatic snapshots, recovery replays
// only a short WAL tail, and forcing a snapshot empties it.
func TestSnapshotKeepsTailShort(t *testing.T) {
	prog := workload.Hiring()
	dir := t.TempDir()
	c, err := NewDurable("Hiring", prog, DurabilityConfig{Dir: dir, SnapshotEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := c.Submit("hr", "clear", nil); err != nil {
			t.Fatal(err)
		}
	}
	// 10 events, snapshots at 4 and 8: tail must hold events 8 and 9 only.
	l, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	snap, tail := l.LoadedSnapshot(), l.LoadedTail()
	l.Close()
	if snap == nil || snap.Len != 8 {
		t.Fatalf("snapshot=%+v", snap)
	}
	if len(tail) != 2 || tail[0].Seq != 8 {
		t.Fatalf("tail=%+v", tail)
	}
	if err := c.Snapshot(); err != nil {
		t.Fatal(err)
	}
	l, err = wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	snap, tail = l.LoadedSnapshot(), l.LoadedTail()
	l.Close()
	if snap == nil || snap.Len != 10 || len(tail) != 0 {
		t.Fatalf("after forced snapshot: snap=%+v tail=%+v", snap, tail)
	}
	c.Close()
}
