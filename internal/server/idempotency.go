package server

import (
	"context"

	"collabwf/internal/data"
	"collabwf/internal/declog"
	"collabwf/internal/schema"
	"collabwf/internal/wal"
)

// idemEntry tracks one idempotency key. While the original submission is
// in flight, concurrent retries wait on done; once it resolves, res holds
// the outcome. Only successful entries stay in the map — a failed
// submission deletes its key (under the same lock that closes done), so a
// corrected retry executes instead of replaying the failure.
type idemEntry struct {
	done chan struct{}
	res  *SubmitResult
	err  error
	// key is the raw client key (the dedupe map is keyed by the run-scoped
	// form, see idemScope); snapshots export the raw key because each run's
	// WAL is private — re-scoping happens again at recovery.
	key string
}

// idemScope qualifies a client idempotency key with the coordinator's run
// id, so the same key replayed against two runs of one fleet dedupes per
// run instead of cross-run (NUL cannot appear in either part ambiguously:
// run ids are validated by the Manager). Single-run mode ("" id) keeps raw
// keys. Callers hold the lock (runID is written once, before traffic).
func (c *Coordinator) idemScope(key string) string {
	if c.runID == "" {
		return key
	}
	return c.runID + "\x00" + key
}

// defaultIdemWindow bounds the dedupe window when DurabilityConfig (or the
// caller) does not choose one.
const defaultIdemWindow = 4096

// SubmitIdemCtx is SubmitCtx with an idempotency key. If the key was
// already accepted within the dedupe window, the original result is
// returned without re-applying the event; if an identical submission is
// still in flight, the call waits for it and shares its outcome. The key
// travels inside the event's WAL record and the recent window rides in
// every snapshot, so dedupe survives crash recovery — the guarantee a
// client retrying after an ambiguous failure (ErrUnavailable) relies on.
// An empty key degrades to SubmitCtx.
func (c *Coordinator) SubmitIdemCtx(ctx context.Context, peer schema.Peer, ruleName string, bindings map[string]data.Value, key string) (*SubmitResult, error) {
	if key == "" {
		return c.submitCtx(ctx, peer, ruleName, bindings, "")
	}
	c.mu.Lock()
	sk := c.idemScope(key)
	for {
		ent, ok := c.idem[sk]
		if !ok {
			break
		}
		select {
		case <-ent.done:
			// Resolved. Failed entries are deleted before done closes (both
			// under the lock), so an entry still in the map is a success.
			res, m := ent.res, c.metrics
			c.mu.Unlock()
			m.idemReplay()
			c.emitReplay(ctx, peer, ruleName, key, res)
			return res, nil
		default:
		}
		// The original is still in flight: wait off-lock, then re-check —
		// the entry may have resolved either way, or been deleted.
		c.mu.Unlock()
		select {
		case <-ent.done:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if ent.err == nil {
			c.metrics.idemReplay()
			c.emitReplay(ctx, peer, ruleName, key, ent.res)
			return ent.res, nil
		}
		c.mu.Lock()
	}
	ent := &idemEntry{done: make(chan struct{}), key: key}
	c.idem[sk] = ent
	c.mu.Unlock()

	res, err := c.submitCtx(ctx, peer, ruleName, bindings, key)

	c.mu.Lock()
	ent.res, ent.err = res, err
	if err != nil {
		// Not applied (a crash-ambiguous record, if durable, is rediscovered
		// from the WAL at recovery); free the key so a retry can execute.
		delete(c.idem, sk)
	} else {
		c.idemOrder = append(c.idemOrder, sk)
		c.evictIdemLocked()
	}
	close(ent.done)
	c.mu.Unlock()
	return res, err
}

// emitReplay records an idempotent replay in the decision log: the client
// was acked (again) for an already-applied submission, so the audit trail
// must show a record for this ack even though no new event was appended.
func (c *Coordinator) emitReplay(ctx context.Context, peer schema.Peer, ruleName, key string, res *SubmitResult) {
	if c.dlog.Load() == nil {
		return
	}
	idx := -1
	if res != nil {
		idx = res.Index
	}
	c.emitDecision(ctx, declog.Decision{Kind: declog.KindSubmit, Decision: declog.Replayed,
		Peer: string(peer), Rule: ruleName, Index: idx, RunLen: idx, IdemKey: key})
}

// evictIdemLocked trims the dedupe window to its bound, oldest key first.
// Callers hold the lock.
func (c *Coordinator) evictIdemLocked() {
	max := c.idemMax
	if max <= 0 {
		max = defaultIdemWindow
	}
	for len(c.idemOrder) > max {
		delete(c.idem, c.idemOrder[0])
		c.idemOrder = c.idemOrder[1:]
	}
}

// addIdemLocked installs a recovered (already-resolved) idempotency entry:
// the result is rebuilt from the recovered run so a post-crash retry gets
// the same answer the original submission did. Callers hold the lock (or
// own the coordinator exclusively, as Recover does).
func (c *Coordinator) addIdemLocked(key string, index int) {
	sk := c.idemScope(key)
	if _, ok := c.idem[sk]; ok {
		return
	}
	done := make(chan struct{})
	close(done)
	res := &SubmitResult{Index: index}
	if index >= 0 && index < c.run.Len() {
		e := c.run.Event(index)
		for _, u := range e.Updates {
			res.Updates = append(res.Updates, u.String())
		}
		for _, q := range c.prog.Peers() {
			if c.run.VisibleAt(index, q) {
				res.VisibleAt = append(res.VisibleAt, string(q))
			}
		}
	}
	c.idem[sk] = &idemEntry{done: done, res: res, key: key}
	c.idemOrder = append(c.idemOrder, sk)
	c.evictIdemLocked()
}

// idemWindowLocked exports the resolved dedupe window in FIFO order, for
// snapshots. Callers hold the lock.
func (c *Coordinator) idemWindowLocked() []wal.IdemEntry {
	if len(c.idemOrder) == 0 {
		return nil
	}
	out := make([]wal.IdemEntry, 0, len(c.idemOrder))
	for _, k := range c.idemOrder {
		if ent := c.idem[k]; ent != nil && ent.res != nil {
			out = append(out, wal.IdemEntry{Key: ent.key, Index: ent.res.Index})
		}
	}
	return out
}
