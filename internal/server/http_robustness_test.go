package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"collabwf/internal/workload"
)

func postSubmit(t *testing.T, url, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(url+"/submit", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func TestSubmitHardening(t *testing.T) {
	c := New("Hiring", workload.Hiring())
	srv := httptest.NewServer(NewHandler(c, HTTPOptions{MaxBodyBytes: 256}))
	defer srv.Close()

	// Malformed JSON is a client error (400), not a coordinator conflict.
	if code, out := postSubmit(t, srv.URL, `{"peer": "hr", `); code != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d (%v)", code, out)
	}
	// Unknown fields are rejected: they are silent typos at best.
	if code, out := postSubmit(t, srv.URL, `{"peer":"hr","rule":"clear","bindingz":{}}`); code != http.StatusBadRequest {
		t.Fatalf("unknown field: status %d (%v)", code, out)
	}
	// Trailing garbage after the object is malformed too.
	if code, out := postSubmit(t, srv.URL, `{"peer":"hr","rule":"clear"} trailing`); code != http.StatusBadRequest {
		t.Fatalf("trailing data: status %d (%v)", code, out)
	}
	// Oversized bodies are cut off by MaxBytesReader.
	big := fmt.Sprintf(`{"peer":"hr","rule":"clear","bindings":{"x":%q}}`, strings.Repeat("a", 512))
	if code, out := postSubmit(t, srv.URL, big); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d (%v)", code, out)
	}
	// Nothing above touched the run…
	if c.Len() != 0 {
		t.Fatalf("run length %d after rejected requests", c.Len())
	}
	// …and a well-formed submission still lands; coordinator rejections
	// keep their 409.
	if code, out := postSubmit(t, srv.URL, `{"peer":"hr","rule":"clear"}`); code != http.StatusOK {
		t.Fatalf("good submit: status %d (%v)", code, out)
	}
	if code, _ := postSubmit(t, srv.URL, `{"peer":"sue","rule":"clear"}`); code != http.StatusConflict {
		t.Fatalf("foreign rule: status %d", code)
	}
}

func TestPanicRecoveryMiddleware(t *testing.T) {
	h := Recovery(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out["error"], "kaboom") {
		t.Fatalf("error=%q", out["error"])
	}
}

func TestTimeoutMiddleware(t *testing.T) {
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
		case <-time.After(5 * time.Second):
		}
	})
	srv := httptest.NewServer(WithTimeout(50*time.Millisecond, slow))
	defer srv.Close()
	start := time.Now()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timeout did not cut the request short (%v)", elapsed)
	}
	var out map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out["error"] == "" {
		t.Fatal("timeout response must be the JSON error body")
	}
}

func TestHealthEndpoints(t *testing.T) {
	c := New("Hiring", workload.Hiring())
	srv := httptest.NewServer(Handler(c))
	defer srv.Close()
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
	}
}

// TestGracefulShutdownIntegration exercises the wfserve lifecycle against
// a real listener: serve, submit, report ready, drain via Shutdown, close
// the coordinator (final snapshot), verify the port is dead and that a
// recovered coordinator carries the full run. After Close, /readyz turns
// 503 and /submit is refused.
func TestGracefulShutdownIntegration(t *testing.T) {
	prog := workload.Hiring()
	dir := t.TempDir()
	c, err := NewDurable("Hiring", prog, DurabilityConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: NewHandler(c, HTTPOptions{RequestTimeout: 5 * time.Second})}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	for i := 0; i < 3; i++ {
		if code, out := postSubmit(t, base, `{"peer":"hr","rule":"clear"}`); code != http.StatusOK {
			t.Fatalf("submit %d: status %d (%v)", i, code, out)
		}
	}
	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var ready map[string]any
	json.NewDecoder(resp.Body).Decode(&ready)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || ready["durable"] != true || ready["events"].(float64) != 3 {
		t.Fatalf("readyz: %d %v", resp.StatusCode, ready)
	}

	// Drain and stop: Shutdown waits for in-flight requests, then the
	// coordinator persists its final snapshot.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-done; err != http.ErrServerClosed {
		t.Fatalf("serve returned %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("listener must be closed after shutdown")
	}

	// The closed coordinator reports unready and refuses submissions.
	post := httptest.NewServer(Handler(c))
	defer post.Close()
	resp, err = http.Get(post.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz after close: status %d", resp.StatusCode)
	}
	// Shutdown is a retry-safe condition (another replica may be up), so the
	// refusal is 503 + Retry-After, not a definite 409.
	if code, _ := postSubmit(t, post.URL, `{"peer":"hr","rule":"clear"}`); code != http.StatusServiceUnavailable {
		t.Fatalf("submit after close: status %d", code)
	}

	// And the run survives: recovery sees all three events.
	rc, err := Recover("Hiring", prog, DurabilityConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if rc.Len() != 3 {
		t.Fatalf("recovered %d events, want 3", rc.Len())
	}
}
