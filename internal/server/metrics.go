package server

import (
	"context"
	"errors"
	"log/slog"
	"time"

	"collabwf/internal/obs"
	"collabwf/internal/transparency"
)

// Metrics is the coordinator/HTTP metric surface, registered on an
// obs.Registry. All families use the wf_ prefix; the full catalogue is
// documented in README.md ("Observability"). Registration is get-or-create,
// so wiring two coordinators (or re-wiring after recovery) onto one
// registry shares series instead of colliding.
//
// Two labeling modes exist and must not mix on one registry (a family
// re-registered with a different label schema panics): NewMetrics is the
// single-run mode with unlabeled coordinator families, NewRunMetrics is the
// fleet mode where every coordinator/read/decider family carries a leading
// "run" label so no shard's counters are invisible or conflated. The HTTP
// families are shared (unlabeled) in both modes: requests are counted where
// they arrive, before run routing.
type Metrics struct {
	reg *obs.Registry
	// run is the "run" label value of the coordinator families ("" = the
	// single-run unlabeled mode). Scalar families are bound to the run's
	// series at construction; vec families prepend it via lv at the call
	// sites.
	run string

	// HTTP layer.
	httpRequests  obs.CounterVec // route, code (status class: 2xx…5xx)
	httpInFlight  *obs.Gauge
	httpLatency   obs.HistogramVec // route
	admissionShed *obs.Counter

	// Coordinator.
	submitAccepted *obs.Counter
	submitRejected obs.CounterVec // reason
	rollbacks      *obs.Counter
	idemReplays    *obs.Counter
	runEvents      *obs.Gauge
	subscribers    *obs.Gauge
	notifSent      *obs.Counter
	notifDropped   obs.CounterVec // peer
	recoverySecs   *obs.Gauge
	recoveredEvs   *obs.Gauge

	// Read path: lock-free vs mutex-fallback serving and snapshot churn.
	readLockfree *obs.Counter
	readLocked   *obs.Counter
	snapSwaps    *obs.Counter
	snapAge      *obs.Gauge

	// Decider search (Certify): the transparency.Stats counters surfaced
	// as registry families.
	deciderRuns    obs.CounterVec // check, outcome
	deciderNodes   *obs.Counter
	deciderHits    *obs.Counter
	deciderMisses  *obs.Counter
	deciderStates  *obs.Counter
	deciderCancels *obs.Counter
	deciderWorkers *obs.Gauge
}

// NewMetrics registers (or retrieves) the server metric families on reg in
// the single-run (unlabeled) mode.
func NewMetrics(reg *obs.Registry) *Metrics { return newMetrics(reg, "") }

// NewRunMetrics registers the server metric families on reg with every
// coordinator/read/decider family carrying a leading "run" label bound to
// the given run id — the fleet mode the Manager instruments each shard
// with. Fleet totals are sums over the run label (the /statusz summarizer
// already folds a family's series); the registry must not also host the
// unlabeled single-run schema.
func NewRunMetrics(reg *obs.Registry, run string) *Metrics {
	if run == "" {
		panic("server: NewRunMetrics requires a run id")
	}
	return newMetrics(reg, run)
}

func newMetrics(reg *obs.Registry, run string) *Metrics {
	// In run mode scalar families become single-label vecs bound to this
	// run's series here, so every consumer keeps its *Counter/*Gauge view;
	// multi-label vecs get the "run" label prepended (and lv at call sites).
	counter := func(name, help string) *obs.Counter {
		if run == "" {
			return reg.Counter(name, help)
		}
		return reg.CounterVec(name, help, "run").With(run)
	}
	gauge := func(name, help string) *obs.Gauge {
		if run == "" {
			return reg.Gauge(name, help)
		}
		return reg.GaugeVec(name, help, "run").With(run)
	}
	counterVec := func(name, help string, labels ...string) obs.CounterVec {
		if run != "" {
			labels = append([]string{"run"}, labels...)
		}
		return reg.CounterVec(name, help, labels...)
	}
	return &Metrics{
		reg: reg,
		run: run,
		httpRequests: reg.CounterVec("wf_http_requests_total",
			"HTTP requests served, by route and status class.", "route", "code"),
		httpInFlight: reg.Gauge("wf_http_in_flight_requests",
			"HTTP requests currently being served."),
		httpLatency: reg.HistogramVec("wf_http_request_duration_seconds",
			"HTTP request latency in seconds, by route.", nil, "route"),
		admissionShed: reg.Counter("wf_admission_shed_total",
			"Submissions shed with 429 by the in-flight admission cap."),

		submitAccepted: counter("wf_submissions_accepted_total",
			"Submissions accepted into the global run."),
		submitRejected: counterVec("wf_submissions_rejected_total",
			"Submissions rejected, by reason (closed, unknown_rule, wrong_peer, not_applicable, guard, wal).", "reason"),
		rollbacks: counter("wf_rollbacks_total",
			"Run rollbacks after a rejected submission (guard violation or WAL failure)."),
		idemReplays: counter("wf_idempotent_replays_total",
			"Retried submissions answered from the idempotency window without re-applying."),
		runEvents: gauge("wf_run_events",
			"Events accepted into the global run so far."),
		subscribers: gauge("wf_subscribers",
			"Registered notification subscribers."),
		notifSent: counter("wf_notifications_sent_total",
			"Notifications delivered to subscriber channels."),
		notifDropped: counterVec("wf_notifications_dropped_total",
			"Notifications dropped on full subscriber channels, by peer.", "peer"),
		recoverySecs: gauge("wf_coordinator_recovery_seconds",
			"Wall time of the last snapshot+WAL recovery."),
		recoveredEvs: gauge("wf_coordinator_recovered_events",
			"Events reconstructed by the last recovery."),

		readLockfree: counter("wf_read_lockfree_total",
			"Reads (view, explain, scenario, transitions, trace) served from the published snapshot without the coordinator lock."),
		readLocked: counter("wf_read_locked_total",
			"Reads served on the coordinator-mutex fallback path (-locked-reads or baseline benchmarking)."),
		snapSwaps: counter("wf_snapshot_swaps_total",
			"Read-snapshot publications (one per release batch, plus construction and recovery)."),
		snapAge: gauge("wf_snapshot_age_seconds",
			"Age of the published read snapshot at scrape time."),

		deciderRuns: counterVec("wf_decider_runs_total",
			"Decider invocations via Certify, by check (bounded, transparent) and outcome (ok, violation, cancelled, error).", "check", "outcome"),
		deciderNodes: counter("wf_decider_nodes_total",
			"Search-tree nodes expanded by the deciders."),
		deciderHits: counter("wf_decider_cache_hits_total",
			"Candidate-memo cache hits in the decider search."),
		deciderMisses: counter("wf_decider_cache_misses_total",
			"Candidate-memo cache misses in the decider search."),
		deciderStates: counter("wf_decider_states_total",
			"Distinct canonical states kept by the instance enumeration."),
		deciderCancels: counter("wf_decider_cancellations_total",
			"Decider searches abandoned by context cancellation."),
		deciderWorkers: gauge("wf_decider_workers",
			"Worker-pool width of the last decider search."),
	}
}

// lv prepends the run label value in fleet mode, so multi-label vec call
// sites write m.x.With(m.lv(...)...) once and serve both modes.
func (m *Metrics) lv(values ...string) []string {
	if m.run == "" {
		return values
	}
	return append([]string{m.run}, values...)
}

// Registry returns the backing registry (for /metrics and /statusz).
func (m *Metrics) Registry() *obs.Registry { return m.reg }

// rejected records one rejected submission. Nil-safe.
func (m *Metrics) rejected(reason string) {
	if m != nil {
		m.submitRejected.With(m.lv(reason)...).Inc()
	}
}

// accepted records one accepted submission and the new run length. Nil-safe.
func (m *Metrics) accepted(runLen int) {
	if m != nil {
		m.submitAccepted.Inc()
		m.runEvents.Set(float64(runLen))
	}
}

// shed records one submission shed by the admission cap. Nil-safe.
func (m *Metrics) shed() {
	if m != nil {
		m.admissionShed.Inc()
	}
}

// idemReplay records one submission deduped by its idempotency key.
// Nil-safe.
func (m *Metrics) idemReplay() {
	if m != nil {
		m.idemReplays.Inc()
	}
}

// rolledBack records one rollback. Nil-safe.
func (m *Metrics) rolledBack() {
	if m != nil {
		m.rollbacks.Inc()
	}
}

// readPath attributes one read to the lock-free or mutex path. Nil-safe.
func (m *Metrics) readPath(lockfree bool) {
	if m == nil {
		return
	}
	if lockfree {
		m.readLockfree.Inc()
	} else {
		m.readLocked.Inc()
	}
}

// snapshotSwapped records one read-snapshot publication. Nil-safe.
func (m *Metrics) snapshotSwapped() {
	if m != nil {
		m.snapSwaps.Inc()
	}
}

// readMetrics returns the metrics handle for lock-free read paths, which
// must not take the coordinator lock to reach the field Instrument sets
// under it. Nil until Instrument runs; every consumer is nil-safe.
func (c *Coordinator) readMetrics() *Metrics {
	return c.mread.Load()
}

// foldSearch folds a decider search-effort delta into the registry.
// Nil-safe.
func (m *Metrics) foldSearch(d transparency.Stats) {
	if m == nil {
		return
	}
	m.deciderNodes.Add(d.Nodes)
	m.deciderHits.Add(d.CacheHits)
	m.deciderMisses.Add(d.CacheMisses)
	m.deciderStates.Add(d.States)
	m.deciderCancels.Add(d.Cancelled)
	if d.Workers > 0 {
		m.deciderWorkers.Set(float64(d.Workers))
	}
}

// deciderOutcome records one decider invocation. Nil-safe.
func (m *Metrics) deciderOutcome(check string, violation bool, err error) {
	if m == nil {
		return
	}
	outcome := "ok"
	switch {
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		outcome = "cancelled"
	case err != nil:
		outcome = "error"
	case violation:
		outcome = "violation"
	}
	m.deciderRuns.With(m.lv(check, outcome)...).Inc()
}

// Instrument attaches the coordinator to a metric registry and returns the
// Metrics handle (register it with NewHandler via HTTPOptions.Metrics to
// expose /metrics and instrument the routes). Gauges are seeded from the
// current state, so a recovered run is visible immediately. Safe to call
// once, before or after traffic starts.
func (c *Coordinator) Instrument(reg *obs.Registry) *Metrics {
	return c.instrument(NewMetrics(reg))
}

// InstrumentRun is Instrument in the fleet mode: the coordinator's families
// carry the run label so N shards on one registry stay distinguishable. The
// Manager calls it with each shard's run id.
func (c *Coordinator) InstrumentRun(reg *obs.Registry, run string) *Metrics {
	return c.instrument(NewRunMetrics(reg, run))
}

func (c *Coordinator) instrument(m *Metrics) *Metrics {
	// The snapshot-age gauge is sampled at scrape time (ages advance whether
	// or not anything is published; a periodic setter would always be stale).
	m.reg.OnGather(func() {
		if _, age, _ := c.SnapshotInfo(); age > 0 {
			m.snapAge.Set(age.Seconds())
		}
	})
	c.mu.Lock()
	defer c.mu.Unlock()
	c.metrics = m
	c.mread.Store(m)
	m.runEvents.Set(float64(c.observable))
	total := 0
	for _, chans := range c.subs {
		total += len(chans)
	}
	m.subscribers.Set(float64(total))
	if c.recoveryTime > 0 {
		m.recoverySecs.Set(c.recoveryTime.Seconds())
		m.recoveredEvs.Set(float64(c.recoveredEvents))
	}
	return m
}

// SetLogger attaches a structured logger; the coordinator logs through the
// "coordinator" subsystem. A nil logger silences it (the default).
func (c *Coordinator) SetLogger(l *slog.Logger) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if l == nil {
		c.logger = obs.Discard()
		return
	}
	c.logger = obs.Sub(l, "coordinator")
}

// logw returns the coordinator's logger (never nil). Callers hold the lock
// or tolerate a racy read of an immutable-after-set pointer.
func (c *Coordinator) logw() *slog.Logger {
	if c.logger == nil {
		return obs.Discard()
	}
	return c.logger
}

// observeRecovery stamps recovery telemetry on the coordinator so a later
// Instrument can surface it.
func (c *Coordinator) observeRecovery(d time.Duration, events int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.recoveryTime = d
	c.recoveredEvents = events
}
