package server

import (
	"context"
	"errors"
	"log/slog"
	"time"

	"collabwf/internal/obs"
	"collabwf/internal/transparency"
)

// Metrics is the coordinator/HTTP metric surface, registered on an
// obs.Registry. All families use the wf_ prefix; the full catalogue is
// documented in README.md ("Observability"). Registration is get-or-create,
// so wiring two coordinators (or re-wiring after recovery) onto one
// registry shares series instead of colliding.
type Metrics struct {
	reg *obs.Registry

	// HTTP layer.
	httpRequests  obs.CounterVec // route, code (status class: 2xx…5xx)
	httpInFlight  *obs.Gauge
	httpLatency   obs.HistogramVec // route
	admissionShed *obs.Counter

	// Coordinator.
	submitAccepted *obs.Counter
	submitRejected obs.CounterVec // reason
	rollbacks      *obs.Counter
	idemReplays    *obs.Counter
	runEvents      *obs.Gauge
	subscribers    *obs.Gauge
	notifSent      *obs.Counter
	notifDropped   obs.CounterVec // peer
	recoverySecs   *obs.Gauge
	recoveredEvs   *obs.Gauge

	// Read path: lock-free vs mutex-fallback serving and snapshot churn.
	readLockfree *obs.Counter
	readLocked   *obs.Counter
	snapSwaps    *obs.Counter
	snapAge      *obs.Gauge

	// Decider search (Certify): the transparency.Stats counters surfaced
	// as registry families.
	deciderRuns    obs.CounterVec // check, outcome
	deciderNodes   *obs.Counter
	deciderHits    *obs.Counter
	deciderMisses  *obs.Counter
	deciderStates  *obs.Counter
	deciderCancels *obs.Counter
	deciderWorkers *obs.Gauge
}

// NewMetrics registers (or retrieves) the server metric families on reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		reg: reg,
		httpRequests: reg.CounterVec("wf_http_requests_total",
			"HTTP requests served, by route and status class.", "route", "code"),
		httpInFlight: reg.Gauge("wf_http_in_flight_requests",
			"HTTP requests currently being served."),
		httpLatency: reg.HistogramVec("wf_http_request_duration_seconds",
			"HTTP request latency in seconds, by route.", nil, "route"),
		admissionShed: reg.Counter("wf_admission_shed_total",
			"Submissions shed with 429 by the in-flight admission cap."),

		submitAccepted: reg.Counter("wf_submissions_accepted_total",
			"Submissions accepted into the global run."),
		submitRejected: reg.CounterVec("wf_submissions_rejected_total",
			"Submissions rejected, by reason (closed, unknown_rule, wrong_peer, not_applicable, guard, wal).", "reason"),
		rollbacks: reg.Counter("wf_rollbacks_total",
			"Run rollbacks after a rejected submission (guard violation or WAL failure)."),
		idemReplays: reg.Counter("wf_idempotent_replays_total",
			"Retried submissions answered from the idempotency window without re-applying."),
		runEvents: reg.Gauge("wf_run_events",
			"Events accepted into the global run so far."),
		subscribers: reg.Gauge("wf_subscribers",
			"Registered notification subscribers."),
		notifSent: reg.Counter("wf_notifications_sent_total",
			"Notifications delivered to subscriber channels."),
		notifDropped: reg.CounterVec("wf_notifications_dropped_total",
			"Notifications dropped on full subscriber channels, by peer.", "peer"),
		recoverySecs: reg.Gauge("wf_coordinator_recovery_seconds",
			"Wall time of the last snapshot+WAL recovery."),
		recoveredEvs: reg.Gauge("wf_coordinator_recovered_events",
			"Events reconstructed by the last recovery."),

		readLockfree: reg.Counter("wf_read_lockfree_total",
			"Reads (view, explain, scenario, transitions, trace) served from the published snapshot without the coordinator lock."),
		readLocked: reg.Counter("wf_read_locked_total",
			"Reads served on the coordinator-mutex fallback path (-locked-reads or baseline benchmarking)."),
		snapSwaps: reg.Counter("wf_snapshot_swaps_total",
			"Read-snapshot publications (one per release batch, plus construction and recovery)."),
		snapAge: reg.Gauge("wf_snapshot_age_seconds",
			"Age of the published read snapshot at scrape time."),

		deciderRuns: reg.CounterVec("wf_decider_runs_total",
			"Decider invocations via Certify, by check (bounded, transparent) and outcome (ok, violation, cancelled, error).", "check", "outcome"),
		deciderNodes: reg.Counter("wf_decider_nodes_total",
			"Search-tree nodes expanded by the deciders."),
		deciderHits: reg.Counter("wf_decider_cache_hits_total",
			"Candidate-memo cache hits in the decider search."),
		deciderMisses: reg.Counter("wf_decider_cache_misses_total",
			"Candidate-memo cache misses in the decider search."),
		deciderStates: reg.Counter("wf_decider_states_total",
			"Distinct canonical states kept by the instance enumeration."),
		deciderCancels: reg.Counter("wf_decider_cancellations_total",
			"Decider searches abandoned by context cancellation."),
		deciderWorkers: reg.Gauge("wf_decider_workers",
			"Worker-pool width of the last decider search."),
	}
}

// Registry returns the backing registry (for /metrics and /statusz).
func (m *Metrics) Registry() *obs.Registry { return m.reg }

// rejected records one rejected submission. Nil-safe.
func (m *Metrics) rejected(reason string) {
	if m != nil {
		m.submitRejected.With(reason).Inc()
	}
}

// accepted records one accepted submission and the new run length. Nil-safe.
func (m *Metrics) accepted(runLen int) {
	if m != nil {
		m.submitAccepted.Inc()
		m.runEvents.Set(float64(runLen))
	}
}

// shed records one submission shed by the admission cap. Nil-safe.
func (m *Metrics) shed() {
	if m != nil {
		m.admissionShed.Inc()
	}
}

// idemReplay records one submission deduped by its idempotency key.
// Nil-safe.
func (m *Metrics) idemReplay() {
	if m != nil {
		m.idemReplays.Inc()
	}
}

// rolledBack records one rollback. Nil-safe.
func (m *Metrics) rolledBack() {
	if m != nil {
		m.rollbacks.Inc()
	}
}

// readPath attributes one read to the lock-free or mutex path. Nil-safe.
func (m *Metrics) readPath(lockfree bool) {
	if m == nil {
		return
	}
	if lockfree {
		m.readLockfree.Inc()
	} else {
		m.readLocked.Inc()
	}
}

// snapshotSwapped records one read-snapshot publication. Nil-safe.
func (m *Metrics) snapshotSwapped() {
	if m != nil {
		m.snapSwaps.Inc()
	}
}

// readMetrics returns the metrics handle for lock-free read paths, which
// must not take the coordinator lock to reach the field Instrument sets
// under it. Nil until Instrument runs; every consumer is nil-safe.
func (c *Coordinator) readMetrics() *Metrics {
	return c.mread.Load()
}

// foldSearch folds a decider search-effort delta into the registry.
// Nil-safe.
func (m *Metrics) foldSearch(d transparency.Stats) {
	if m == nil {
		return
	}
	m.deciderNodes.Add(d.Nodes)
	m.deciderHits.Add(d.CacheHits)
	m.deciderMisses.Add(d.CacheMisses)
	m.deciderStates.Add(d.States)
	m.deciderCancels.Add(d.Cancelled)
	if d.Workers > 0 {
		m.deciderWorkers.Set(float64(d.Workers))
	}
}

// deciderOutcome records one decider invocation. Nil-safe.
func (m *Metrics) deciderOutcome(check string, violation bool, err error) {
	if m == nil {
		return
	}
	outcome := "ok"
	switch {
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		outcome = "cancelled"
	case err != nil:
		outcome = "error"
	case violation:
		outcome = "violation"
	}
	m.deciderRuns.With(check, outcome).Inc()
}

// Instrument attaches the coordinator to a metric registry and returns the
// Metrics handle (register it with NewHandler via HTTPOptions.Metrics to
// expose /metrics and instrument the routes). Gauges are seeded from the
// current state, so a recovered run is visible immediately. Safe to call
// once, before or after traffic starts.
func (c *Coordinator) Instrument(reg *obs.Registry) *Metrics {
	m := NewMetrics(reg)
	// The snapshot-age gauge is sampled at scrape time (ages advance whether
	// or not anything is published; a periodic setter would always be stale).
	reg.OnGather(func() {
		if _, age, _ := c.SnapshotInfo(); age > 0 {
			m.snapAge.Set(age.Seconds())
		}
	})
	c.mu.Lock()
	defer c.mu.Unlock()
	c.metrics = m
	c.mread.Store(m)
	m.runEvents.Set(float64(c.observable))
	total := 0
	for _, chans := range c.subs {
		total += len(chans)
	}
	m.subscribers.Set(float64(total))
	if c.recoveryTime > 0 {
		m.recoverySecs.Set(c.recoveryTime.Seconds())
		m.recoveredEvs.Set(float64(c.recoveredEvents))
	}
	return m
}

// SetLogger attaches a structured logger; the coordinator logs through the
// "coordinator" subsystem. A nil logger silences it (the default).
func (c *Coordinator) SetLogger(l *slog.Logger) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if l == nil {
		c.logger = obs.Discard()
		return
	}
	c.logger = obs.Sub(l, "coordinator")
}

// logw returns the coordinator's logger (never nil). Callers hold the lock
// or tolerate a racy read of an immutable-after-set pointer.
func (c *Coordinator) logw() *slog.Logger {
	if c.logger == nil {
		return obs.Discard()
	}
	return c.logger
}

// observeRecovery stamps recovery telemetry on the coordinator so a later
// Instrument can surface it.
func (c *Coordinator) observeRecovery(d time.Duration, events int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.recoveryTime = d
	c.recoveredEvents = events
}
