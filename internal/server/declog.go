package server

import (
	"context"

	"collabwf/internal/data"
	"collabwf/internal/declog"
	"collabwf/internal/obs"
)

// SetDecisionLog attaches a decision-log pipeline: from now on every
// submission verdict, certification, explanation request and guard
// installation emits one structured record (see internal/declog). Detach
// with nil. The coordinator does not own the logger — the caller drains and
// closes it after Close, so records of the final submissions are exported.
//
// Emission is strictly fire-and-forget: Emit never blocks (full queues drop
// their oldest record), so the decision log can never backpressure the
// submission path.
func (c *Coordinator) SetDecisionLog(l *declog.Logger) {
	c.dlog.Store(l)
}

// DecisionLog returns the attached pipeline, nil when none.
func (c *Coordinator) DecisionLog() *declog.Logger {
	return c.dlog.Load()
}

// emitDecision stamps the workflow name, the run id and the request's
// trace id onto d and emits it. Nil-safe (no logger attached → no-op).
// c.name and c.runID are immutable once the coordinator is handed out
// (Recover and the Manager rewrite them before returning), so the
// lock-free reads are safe — the same discipline logw relies on.
func (c *Coordinator) emitDecision(ctx context.Context, d declog.Decision) {
	l := c.dlog.Load()
	if l == nil {
		return
	}
	d.Workflow = c.name
	d.Run = c.runID
	if d.TraceID == "" {
		d.TraceID = obs.SpanFrom(ctx).TraceID()
	}
	l.Emit(d)
}

// encodeBindings renders request bindings in the trace wire encoding, for
// rejection records of events that never came to exist (not_applicable).
func encodeBindings(bindings map[string]data.Value) map[string]string {
	if len(bindings) == 0 {
		return nil
	}
	out := make(map[string]string, len(bindings))
	for k, v := range bindings {
		out[k] = string(v)
	}
	return out
}
