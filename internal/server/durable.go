package server

import (
	"context"
	"fmt"
	"log/slog"
	"time"

	"collabwf/internal/core"
	"collabwf/internal/declog"
	"collabwf/internal/design"
	"collabwf/internal/obs"
	"collabwf/internal/program"
	"collabwf/internal/schema"
	"collabwf/internal/trace"
	"collabwf/internal/wal"
)

// DurabilityConfig selects where and how a coordinator persists its run.
type DurabilityConfig struct {
	// Dir is the data directory holding wal.log and snapshot.json.
	Dir string
	// RunID names the workflow instance this coordinator serves within a
	// run fleet ("" = single-run mode). It is set before the idempotency
	// window is rebuilt, so recovered dedupe entries land under the same
	// run-scoped keys live submissions use.
	RunID string
	// Sync is the WAL fsync policy (default wal.SyncAlways).
	Sync wal.SyncPolicy
	// SyncInterval bounds the time between fsyncs under wal.SyncInterval.
	SyncInterval time.Duration
	// SnapshotEvery snapshots the run prefix after that many accepted
	// events, keeping the WAL tail (and recovery time) short. 0 disables
	// automatic snapshots; one is still written by Close.
	SnapshotEvery int
	// MaxBatch caps how many buffered records one group-commit fsync
	// covers; ≤ 0 means unbounded.
	MaxBatch int
	// NoGroupCommit keeps the pre-batching submit path: append + fsync
	// synchronously under the coordinator lock, one fsync per submission.
	// Exists for comparison benchmarks (wfbench E16) and escape-hatch
	// debugging; group commit is the default.
	NoGroupCommit bool
	// Strict refuses to start when the WAL holds a corrupt complete record,
	// instead of the default truncate-at-first-bad-record recovery (the
	// -wal-strict flag).
	Strict bool
	// IdemWindow bounds the idempotency-key dedupe window (submissions
	// remembered for retry deduplication); ≤ 0 means 4096.
	IdemWindow int
	// Failpoints, when non-nil, injects WAL faults (tests only).
	Failpoints *wal.Failpoints
	// Metrics, when non-nil, records WAL and recovery telemetry on the
	// registry (the wf_wal_* and wf_recovery_* families).
	Metrics *obs.Registry
	// Logger, when non-nil, lets the WAL report recovery anomalies
	// (corruption, torn tails) through the "wal" subsystem.
	Logger *slog.Logger
	// DecisionLog, when non-nil, is attached before recovery completes, so
	// the audit stream opens with the recovery record and the re-installed
	// guards — an auditor reading the log from this boot sees which policies
	// every later verdict was decided under. The coordinator does not own
	// the logger; close it after Close.
	DecisionLog *declog.Logger
}

// NewDurable starts a durable coordinator rooted at cfg.Dir. If the
// directory already holds a run it is recovered first — NewDurable and
// Recover are the same operation; the empty directory is just the trivial
// recovery.
func NewDurable(name string, p *program.Program, cfg DurabilityConfig) (*Coordinator, error) {
	return Recover(name, p, cfg)
}

// Recover reconstructs a durable coordinator from cfg.Dir: it replays the
// snapshot's run prefix, re-applies the WAL tail (skipping records the
// snapshot already covers, truncating a torn trailing record rather than
// failing), re-installs the persisted guards, and rebuilds the per-peer
// explainers and guard monitors. Every replayed event passes the full run
// conditions again, so a tampered log is rejected, not replayed.
func Recover(name string, p *program.Program, cfg DurabilityConfig) (*Coordinator, error) {
	start := time.Now()
	var walLog *slog.Logger
	if cfg.Logger != nil {
		walLog = obs.Sub(cfg.Logger, "wal")
	}
	log, err := wal.Open(cfg.Dir, wal.Options{
		Sync:         cfg.Sync,
		SyncInterval: cfg.SyncInterval,
		MaxBatch:     cfg.MaxBatch,
		Strict:       cfg.Strict,
		Failpoints:   cfg.Failpoints,
		Metrics:      cfg.Metrics,
		Logger:       walLog,
	})
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	c := New(name, p)
	c.runID = cfg.RunID
	c.log = log
	c.snapshotEvery = cfg.SnapshotEvery
	c.noGroupCommit = cfg.NoGroupCommit
	c.idemMax = cfg.IdemWindow

	snap := log.LoadedSnapshot()
	if snap != nil {
		if snap.Workflow != "" {
			c.name = snap.Workflow
		}
		run, err := snap.Trace.Replay(p)
		if err != nil {
			log.Close()
			return nil, fmt.Errorf("server: replaying snapshot: %w", err)
		}
		c.run = run
	}
	for _, rec := range log.LoadedTail() {
		if rec.Seq < c.run.Len() {
			// Already covered by the snapshot (crash between snapshot
			// rename and log reset).
			continue
		}
		if rec.Seq != c.run.Len() {
			log.Close()
			return nil, fmt.Errorf("server: WAL gap: record %d follows run of length %d", rec.Seq, c.run.Len())
		}
		if err := applyRecord(c.run, rec.Event); err != nil {
			log.Close()
			return nil, fmt.Errorf("server: replaying WAL record %d: %w", rec.Seq, err)
		}
	}
	// Guards were installed before the run started; recreate their monitors
	// over the recovered run (NewMonitor processes existing events).
	if snap != nil {
		for peer, h := range snap.Guards {
			sp := schema.Peer(peer)
			if !p.Schema.HasPeer(sp) {
				log.Close()
				return nil, fmt.Errorf("server: persisted guard for unknown peer %s", peer)
			}
			c.guards[sp] = h
			c.guardMonitors[sp] = design.NewMonitor(c.run, sp, h)
		}
	}
	// Rebuild the idempotency window: the snapshot's window first (oldest
	// keys, in its FIFO order), then the keys of the replayed tail records —
	// so a client retrying a submission that was durable before the crash
	// gets its original index back instead of double-applying.
	if snap != nil {
		for _, ie := range snap.Idem {
			c.addIdemLocked(ie.Key, ie.Index)
		}
	}
	for _, rec := range log.LoadedTail() {
		if rec.Idem != "" && rec.Seq < c.run.Len() {
			c.addIdemLocked(rec.Idem, rec.Seq)
		}
	}
	// Everything recovered was durable before the crash: release it all.
	c.observable = c.run.Len()
	// New published an empty-prefix snapshot over the pre-replay run, and its
	// lazily created explainers/visible-index caches are bound to that run
	// too: reset them and rebuild against the recovered run here, during
	// recovery, so no peer's first Explain replays the whole prefix under the
	// lock (publishSnapshotLocked syncs every peer's explainer to the
	// recovered prefix and swaps in the real snapshot).
	c.explainers = make(map[schema.Peer]*core.Explainer)
	c.visCache = make(map[schema.Peer]*visIndex)
	// The view-string cache needs no reset: nothing can have rendered a view
	// between New and here (the coordinator has not been returned yet), and
	// stale entries cannot exist anyway — keys are (step, peer) over the
	// immutable released prefix. Clear it defensively all the same.
	c.viewStrs.Range(func(k, _ any) bool { c.viewStrs.Delete(k); return true })
	c.publishSnapshotLocked()
	c.observeRecovery(time.Since(start), c.run.Len())
	if cfg.DecisionLog != nil {
		c.dlog.Store(cfg.DecisionLog)
		// Open this boot's audit stream: one recovery record, then the
		// guards now in force. Re-logging recovered guards is deliberate —
		// each log segment is independently auditable — and the auditor
		// treats a re-install with an unchanged bound as benign.
		c.emitDecision(context.Background(), declog.Decision{Kind: declog.KindRecover,
			Decision: declog.Recovered, RunLen: c.run.Len(), Index: -1,
			DurationNS: time.Since(start).Nanoseconds()})
		for peer, h := range c.guards {
			c.emitDecision(context.Background(), declog.Decision{Kind: declog.KindGuard,
				Decision: declog.Installed, Peer: string(peer), H: h, Index: -1,
				Reason: "recovered"})
		}
	}
	return c, nil
}

// Ready reports whether the coordinator can accept submissions: recovery
// complete, not shut down, and (when durable) the WAL writable. A failed
// background snapshot is also surfaced here — events remain durable in the
// WAL, but the operator should know the tail is growing.
func (c *Coordinator) Ready() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return fmt.Errorf("server: coordinator is shut down")
	}
	if c.log != nil {
		if err := c.log.Healthy(); err != nil {
			return err
		}
		if c.lastSnapErr != nil {
			return fmt.Errorf("server: last snapshot failed: %w", c.lastSnapErr)
		}
	}
	return nil
}

// Durable reports whether the coordinator persists its run.
func (c *Coordinator) Durable() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.log != nil
}

// CommitQueueDepth reports how many accepted-but-unfsynced records are
// queued for the next group commit (always 0 for in-memory coordinators
// and the synchronous append path).
func (c *Coordinator) CommitQueueDepth() int {
	c.mu.Lock()
	log := c.log
	c.mu.Unlock()
	if log == nil {
		return 0
	}
	return log.Pending()
}

// WALCorruptRecords reports how many complete-but-corrupt records the WAL
// dropped at the last Open (0 for in-memory coordinators and clean logs).
// The chaos harness asserts this stays zero across crash/recover cycles.
func (c *Coordinator) WALCorruptRecords() int {
	c.mu.Lock()
	log := c.log
	c.mu.Unlock()
	if log == nil {
		return 0
	}
	return log.CorruptRecords()
}

// Snapshot forces a snapshot of the current run prefix. In-flight group
// commits are flushed first so the log reset cannot wipe buffered records.
func (c *Coordinator) Snapshot() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.log == nil {
		return fmt.Errorf("server: coordinator is not durable")
	}
	if err := c.log.Flush(); err != nil {
		c.handleWALStallLocked(context.Background())
	}
	return c.writeSnapshotLocked(context.Background())
}

// Close shuts the coordinator down: further submissions are rejected, the
// commit queue is drained and every durable event released, all subscriber
// channels are closed (so consumers ranging over them exit), a final
// snapshot is written, and the WAL is closed. Idempotent; a nil error means
// the full state is durable in the snapshot alone.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	if c.log == nil {
		c.closeSubscribersLocked()
		return nil
	}
	// Drain in-flight group commits. The committer needs no coordinator
	// lock, so holding it here cannot deadlock; submitters blocked on their
	// futures resolve now and queue behind this lock. A failed drain means
	// the WAL stalled — realign so the final snapshot describes exactly the
	// durable prefix.
	if err := c.log.Flush(); err != nil {
		c.handleWALStallLocked(context.Background())
	}
	// Release events that are durable but whose submitters have not
	// re-acquired the lock yet — notifications must flow before the
	// channels close, and in index order.
	if n := c.run.Len(); n > c.observable {
		c.releaseLocked(context.Background(), n-1)
	}
	c.closeSubscribersLocked()
	snapErr := c.writeSnapshotLocked(context.Background())
	if err := c.log.Close(); err != nil && snapErr == nil {
		snapErr = err
	}
	return snapErr
}

// Crash simulates a hard process kill, for fault drills: no flush, no
// final snapshot, no release of buffered events. In-flight commits resolve
// with wal.ErrCrashed (their submitters answer ErrUnavailable — outcome
// unknown) and the WAL file closes as-is. The returned offsets are the
// log's durable prefix and written size (see wal.Log.Crash), so a harness
// can truncate the unsynced tail — simulating page-cache loss — before
// handing the directory to Recover.
func (c *Coordinator) Crash() (durable, size int64, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, 0, fmt.Errorf("server: coordinator already shut down")
	}
	c.closed = true
	c.closeSubscribersLocked()
	if c.log == nil {
		return 0, 0, nil
	}
	return c.log.Crash()
}

// writeSnapshotLocked persists the current run prefix and guards. Callers
// hold the lock; ctx carries the trace the snapshot should appear in (use
// context.Background() outside a request).
func (c *Coordinator) writeSnapshotLocked(ctx context.Context) error {
	guards := make(map[string]int, len(c.guards))
	for p, h := range c.guards {
		guards[string(p)] = h
	}
	snap := &wal.Snapshot{
		Workflow: c.name,
		Guards:   guards,
		Len:      c.run.Len(),
		Trace:    trace.FromRun(c.name, c.run),
		Idem:     c.idemWindowLocked(),
	}
	if err := c.log.WriteSnapshotCtx(ctx, snap); err != nil {
		return err
	}
	c.sinceSnapshot = 0
	c.lastSnapErr = nil
	return nil
}

// applyRecord decodes one WAL record into an event and appends it to the
// run, re-checking all run conditions.
func applyRecord(r *program.Run, rec trace.EventRecord) error {
	e, err := rec.Decode(r.Prog)
	if err != nil {
		return err
	}
	return r.Append(e)
}
