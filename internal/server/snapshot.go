package server

import (
	"sort"
	"time"

	"collabwf/internal/cond"
	"collabwf/internal/core"
	"collabwf/internal/program"
	"collabwf/internal/schema"
	"collabwf/internal/trace"
)

// snapshot is an immutable capture of the released run prefix, published
// through Coordinator.snap (an atomic.Pointer) by releaseLocked after every
// group-commit release. The read paths — View, Explain, Scenario,
// Transitions, Trace, Len — serve from the latest snapshot without touching
// the coordinator mutex.
//
// Why sharing is safe (the memory-model argument, expanded in DESIGN.md):
//
//   - steps is a length-capped slice header over the live run's Steps
//     backing array. The released prefix is append-only and immutable:
//     Append writes only indices ≥ len(steps), and rollbackTo always
//     targets n ≥ observable, so Truncate zeroes only indices ≥ len(steps).
//     Readers and the writer touch disjoint memory.
//   - Instances are copy-on-write (Apply never mutates a predecessor), so
//     rendering a view over steps[i].Instance reads immutable data.
//   - vis slices are length-capped captures of the visible-index caches,
//     which are append-only for the same reason.
//   - exp holds copy-on-write freezes of the per-peer incremental
//     explainers (see faithful.Maintainer.Freeze).
//   - atomic.Pointer.Store/Load give release/acquire ordering: everything
//     written before the Store (the prefix, the caches, the freezes) is
//     visible to any reader that Loads the new pointer.
type snapshot struct {
	name    string
	prog    *program.Program
	initial *schema.Instance
	// steps is the released prefix; len(steps) == observable at publication.
	steps []program.Step
	// vis[p] lists p's visible event indices over steps, ascending.
	vis map[schema.Peer][]int
	// exp[p] answers p's explanation queries over exactly this prefix.
	exp map[schema.Peer]*core.FrozenExplainer
	// seq increments with every publication; born stamps it (UnixNano),
	// feeding the wf_snapshot_age_seconds gauge.
	seq  uint64
	born int64
	// cnt is the owning coordinator's condition-eval counter block (nil when
	// unprofiled): visibility checks on the snapshot attribute their
	// selection evaluations to that run, not to the process-global sink.
	cnt *cond.EvalCounts
}

// snapshot implements core.RunReader over the captured prefix.

func (s *snapshot) Len() int                       { return len(s.steps) }
func (s *snapshot) Schema() *schema.Collaborative  { return s.prog.Schema }
func (s *snapshot) Event(i int) *program.Event     { return s.steps[i].Event }
func (s *snapshot) Effects(i int) []program.Effect { return s.steps[i].Effects }

func (s *snapshot) VisibleAt(i int, p schema.Peer) bool {
	return program.StepVisibleAtCount(s.prog.Schema, &s.steps[i], p, s.cnt)
}

// instanceAt returns I_i of the captured prefix; -1 is the initial instance.
func (s *snapshot) instanceAt(i int) *schema.Instance {
	if i < 0 {
		return s.initial
	}
	return s.steps[i].Instance
}

// events decodes the captured prefix's event sequence.
func (s *snapshot) events() []*program.Event {
	out := make([]*program.Event, len(s.steps))
	for i := range s.steps {
		out[i] = s.steps[i].Event
	}
	return out
}

// publishSnapshotLocked captures the released prefix and swaps it in for
// lock-free readers. Callers hold the lock (or are constructing the
// coordinator). Publication advances the per-peer explainers to the
// released prefix first — this is where the incremental explanation work
// happens, O(new events) per release, so no read ever pays it.
func (c *Coordinator) publishSnapshotLocked() {
	peers := c.prog.Peers()
	vis := make(map[schema.Peer][]int, len(peers))
	exp := make(map[schema.Peer]*core.FrozenExplainer, len(peers))
	for _, p := range peers {
		idxs := c.visibleLocked(p)
		vis[p] = idxs[:len(idxs):len(idxs)]
		exp[p] = c.explainer(p).Freeze()
	}
	c.snapSeq++
	s := &snapshot{
		name:    c.name,
		prog:    c.prog,
		initial: c.run.Initial,
		steps:   c.run.Steps[:c.observable:c.observable],
		vis:     vis,
		exp:     exp,
		seq:     c.snapSeq,
		born:    time.Now().UnixNano(),
		cnt:     c.profiler.Cond(),
	}
	c.snap.Store(s)
	c.metrics.snapshotSwapped()
}

// readSnapshot returns the current snapshot for a lock-free read, or nil
// when lock-free reads are disabled (the -locked-reads escape hatch and the
// E17 baseline) and the caller must fall back to the mutex path.
func (c *Coordinator) readSnapshot() *snapshot {
	if c.lockedReads.Load() {
		return nil
	}
	return c.snap.Load()
}

// SetLockedReads forces every read back onto the coordinator mutex (true)
// or restores lock-free snapshot serving (false, the default). Exists for
// the E17 baseline and as an operational escape hatch (-locked-reads);
// the wf_read_locked_total / wf_read_lockfree_total counters attribute
// reads to the two paths.
func (c *Coordinator) SetLockedReads(v bool) { c.lockedReads.Store(v) }

// SnapshotInfo reports the published snapshot's sequence number, age, and
// event count, for /statusz and the snapshot-age gauge.
func (c *Coordinator) SnapshotInfo() (seq uint64, age time.Duration, events int) {
	s := c.snap.Load()
	if s == nil {
		return 0, 0, 0
	}
	return s.seq, time.Duration(time.Now().UnixNano() - s.born), len(s.steps)
}

// vsKey keys the rendered-view-string cache: the peer's view after step
// (−1 = initial instance). Entries stay valid forever — the released prefix
// is immutable and rollback only ever targets unreleased events — so the
// cache is shared across snapshots and never invalidated.
type vsKey struct {
	step int
	peer schema.Peer
}

// snapView renders the peer's view after step i of the snapshot, serving
// repeated reads from the shared string cache. ViewInstance materializes
// lazily (mutating itself), so the cache stores only the rendered string;
// each miss builds a private ViewInstance and discards it.
func (c *Coordinator) snapView(s *snapshot, i int, peer schema.Peer) string {
	k := vsKey{i, peer}
	if v, ok := c.viewStrs.Load(k); ok {
		return v.(string)
	}
	str := schema.ViewOf(s.instanceAt(i), s.prog.Schema, peer).String()
	c.viewStrs.Store(k, str)
	return str
}

// snapNotification builds the peer's notification for event idx from the
// snapshot alone — the lock-free twin of buildNotification, kept
// byte-identical through the shared makeNotification assembly.
func (c *Coordinator) snapNotification(s *snapshot, peer schema.Peer, idx int) Notification {
	return makeNotification(s.Event(idx), peer, idx, c.snapView(s, idx, peer), s.exp[peer].ExplainEvent(idx))
}

// TransitionsAndLen answers Transitions plus the released length from one
// snapshot, so pollers get a mutually consistent (transitions, len) pair;
// /transitions serves this.
func (c *Coordinator) TransitionsAndLen(peer schema.Peer, from int) ([]Notification, int, error) {
	if s := c.readSnapshot(); s != nil {
		if !s.prog.Schema.HasPeer(peer) {
			return nil, 0, unknownPeerErr(peer)
		}
		c.readMetrics().readPath(true)
		idxs := s.vis[peer]
		var out []Notification
		for _, idx := range idxs[sort.SearchInts(idxs, from):] {
			out = append(out, c.snapNotification(s, peer, idx))
		}
		return out, s.Len(), nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.prog.Schema.HasPeer(peer) {
		return nil, 0, unknownPeerErr(peer)
	}
	c.readMetrics().readPath(false)
	return c.transitionsLocked(peer, from), c.observable, nil
}

// snapTrace exports the snapshot's prefix as a replayable trace.
func (s *snapshot) trace() *trace.Trace {
	return trace.FromEvents(s.name, s.initial, s.events())
}
