package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"collabwf/internal/data"
	"collabwf/internal/design"
	"collabwf/internal/schema"
	"collabwf/internal/trace"
	"collabwf/internal/workload"
)

func TestSubmitFlowAndExplain(t *testing.T) {
	c := New("Hiring", workload.Hiring())
	res, err := c.Submit("hr", "clear", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Index != 0 || len(res.Updates) != 1 {
		t.Fatalf("result=%+v", res)
	}
	cand := data.Value(strings.TrimSuffix(strings.TrimPrefix(res.Updates[0], "+Cleared("), ")"))
	if _, err := c.Submit("cfo", "cfo_ok", map[string]data.Value{"x": cand}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit("ceo", "approve", map[string]data.Value{"x": cand}); err != nil {
		t.Fatal(err)
	}
	hire, err := c.Submit("hr", "hire", map[string]data.Value{"x": cand})
	if err != nil {
		t.Fatal(err)
	}
	foundSue := false
	for _, p := range hire.VisibleAt {
		if p == "sue" {
			foundSue = true
		}
	}
	if !foundSue {
		t.Fatalf("hire must be visible at sue: %v", hire.VisibleAt)
	}
	rep, err := c.Explain("sue")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Transitions) != 2 {
		t.Fatalf("sue's transitions: %d", len(rep.Transitions))
	}
	seq, err := c.Scenario("sue")
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != 4 {
		t.Fatalf("scenario=%v", seq)
	}
}

func TestSubmitValidation(t *testing.T) {
	c := New("Hiring", workload.Hiring())
	if _, err := c.Submit("hr", "nope", nil); err == nil {
		t.Fatal("unknown rule must be rejected")
	}
	if _, err := c.Submit("sue", "clear", nil); err == nil {
		t.Fatal("submitting another peer's rule must be rejected")
	}
	if _, err := c.Submit("ceo", "approve", map[string]data.Value{"x": "ghost"}); err == nil {
		t.Fatal("inapplicable rule must be rejected")
	}
	if _, err := c.View("nobody"); err == nil {
		t.Fatal("unknown peer view must be rejected")
	}
}

func TestGuardRejectsViolations(t *testing.T) {
	staged, err := design.Staged(workload.Hiring(), "sue")
	if err != nil {
		t.Fatal(err)
	}
	c := New("Staged", staged)
	if err := c.Guard("sue", 2); err != nil {
		t.Fatal(err)
	}
	mustSubmit := func(peer schema.Peer, rule string, bind map[string]data.Value) *SubmitResult {
		t.Helper()
		res, err := c.Submit(peer, rule, bind)
		if err != nil {
			t.Fatalf("%s: %v", rule, err)
		}
		return res
	}
	mustSubmit("hr", "stage_refresh_hr", nil)
	res := mustSubmit("hr", "clear", nil)
	cand := data.Value(strings.TrimSuffix(strings.TrimPrefix(res.Updates[0], "+Cleared("), ")"))
	mustSubmit("cfo", "stage_refresh_cfo", nil)
	mustSubmit("cfo", "cfo_ok", map[string]data.Value{"x": cand})
	mustSubmit("ceo", "approve", map[string]data.Value{"x": cand})
	before := c.Len()
	if _, err := c.Submit("hr", "hire", map[string]data.Value{"x": cand}); err == nil {
		t.Fatal("over-budget hire must be rejected by the guard")
	}
	if c.Len() != before {
		t.Fatal("rejected event must not remain in the run")
	}
	// Guards must be installed before the run starts.
	if err := c.Guard("hr", 2); err == nil {
		t.Fatal("late guard installation must fail")
	}
}

func TestSubscriptions(t *testing.T) {
	c := New("Hiring", workload.Hiring())
	ch, cancel, err := c.Subscribe("sue", 4)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	res, err := c.Submit("hr", "clear", nil)
	if err != nil {
		t.Fatal(err)
	}
	cand := data.Value(strings.TrimSuffix(strings.TrimPrefix(res.Updates[0], "+Cleared("), ")"))
	if _, err := c.Submit("cfo", "cfo_ok", map[string]data.Value{"x": cand}); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-ch:
		if n.Index != 0 || !n.Omega || !strings.Contains(n.View, "Cleared") {
			t.Fatalf("notification=%+v", n)
		}
	default:
		t.Fatal("clear notification missing")
	}
	select {
	case n := <-ch:
		t.Fatalf("cfo_ok is invisible to sue, got %+v", n)
	default:
	}
	// After cancel, no more notifications.
	cancel()
	if _, err := c.Submit("ceo", "approve", map[string]data.Value{"x": cand}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit("hr", "hire", map[string]data.Value{"x": cand}); err != nil {
		t.Fatal(err)
	}
	if len(ch) != 0 {
		t.Fatal("cancelled subscriber still receives")
	}
}

func TestSlowSubscriberDrops(t *testing.T) {
	c := New("Hiring", workload.Hiring())
	_, cancel, err := c.Subscribe("hr", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	// hr sees every clear; with buffer 1, the second notification drops.
	if _, err := c.Submit("hr", "clear", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit("hr", "clear", nil); err != nil {
		t.Fatal(err)
	}
	if c.Dropped() != 1 {
		t.Fatalf("dropped=%d", c.Dropped())
	}
}

// Concurrent submissions serialize into one consistent run.
func TestConcurrentSubmissions(t *testing.T) {
	c := New("Hiring", workload.Hiring())
	var wg sync.WaitGroup
	const n = 24
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.Submit("hr", "clear", nil)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("submission %d: %v", i, err)
		}
	}
	if c.Len() != n {
		t.Fatalf("run length %d, want %d", c.Len(), n)
	}
	// The exported trace replays.
	tr := c.Trace()
	if _, err := tr.Replay(workload.Hiring()); err != nil {
		t.Fatal(err)
	}
}

func TestHTTPAPI(t *testing.T) {
	c := New("Hiring", workload.Hiring())
	srv := httptest.NewServer(Handler(c))
	defer srv.Close()

	post := func(body string) map[string]any {
		t.Helper()
		resp, err := http.Post(srv.URL+"/submit", "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %v", resp.StatusCode, out)
		}
		return out
	}
	res := post(`{"peer":"hr","rule":"clear","bindings":{"x":"sue"}}`)
	if res["index"].(float64) != 0 {
		t.Fatalf("submit result %v", res)
	}
	post(`{"peer":"cfo","rule":"cfo_ok","bindings":{"x":"sue"}}`)
	post(`{"peer":"ceo","rule":"approve","bindings":{"x":"sue"}}`)
	post(`{"peer":"hr","rule":"hire","bindings":{"x":"sue"}}`)

	get := func(path string) map[string]any {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	if v := get("/view?peer=sue"); !strings.Contains(v["view"].(string), "Hire") {
		t.Fatalf("view=%v", v)
	}
	if ex := get("/explain?peer=sue"); !strings.Contains(ex["text"].(string), "because") {
		t.Fatalf("explain=%v", ex)
	}
	if sc := get("/scenario?peer=sue"); len(sc["events"].([]any)) != 4 {
		t.Fatalf("scenario=%v", sc)
	}
	tr := get("/transitions?peer=sue&from=0")
	if len(tr["transitions"].([]any)) != 2 {
		t.Fatalf("transitions=%v", tr)
	}
	// Errors surface with non-200 status.
	resp, err := http.Post(srv.URL+"/submit", "application/json",
		bytes.NewBufferString(`{"peer":"sue","rule":"clear"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("foreign-rule submit: status %d", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/view?peer=nobody")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown peer: status %d", resp.StatusCode)
	}
	// Trace round-trip through the API.
	resp, err = http.Get(srv.URL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	gotTrace, err := trace.Read(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotTrace.Events) != 4 {
		t.Fatalf("trace has %d events", len(gotTrace.Events))
	}
	if _, err := gotTrace.Replay(workload.Hiring()); err != nil {
		t.Fatal(err)
	}
}
