package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"collabwf/internal/core"
	"collabwf/internal/obs"
	"collabwf/internal/workload"
)

// seriesValue returns the value of one series of a family, identified by
// its label values in registration order; ok is false when the family or
// series does not exist.
func seriesValue(reg *obs.Registry, name string, labels ...string) (float64, bool) {
	for _, fam := range reg.Gather() {
		if fam.Name != name {
			continue
		}
		for _, s := range fam.Series {
			if len(s.Labels) != len(labels) {
				continue
			}
			match := true
			for i, l := range s.Labels {
				if l.Value != labels[i] {
					match = false
					break
				}
			}
			if match {
				return s.Value, true
			}
		}
	}
	return 0, false
}

func TestMiddlewareRequestMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	c := New("Hiring", workload.Hiring())
	m := c.Instrument(reg)
	srv := httptest.NewServer(NewHandler(c, HTTPOptions{Metrics: m}))
	defer srv.Close()

	get := func(path string, want int) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("GET %s: status %d, want %d", path, resp.StatusCode, want)
		}
	}
	post := func(path, body string, want int) {
		t.Helper()
		resp, err := http.Post(srv.URL+path, "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("POST %s: status %d, want %d", path, resp.StatusCode, want)
		}
	}

	get("/healthz", http.StatusOK)
	get("/healthz", http.StatusOK)
	post("/submit", "not json", http.StatusBadRequest)
	post("/submit", `{"peer":"hr","rule":"no_such_rule"}`, http.StatusConflict)
	post("/submit", `{"peer":"hr","rule":"clear","bindings":{"x":"sue"}}`, http.StatusOK)

	cases := []struct {
		route, class string
		want         float64
	}{
		{"/healthz", "2xx", 2},
		{"/submit", "4xx", 2}, // the 400 and the 409
		{"/submit", "2xx", 1},
	}
	for _, tc := range cases {
		got, ok := seriesValue(reg, "wf_http_requests_total", tc.route, tc.class)
		if !ok || got != tc.want {
			t.Errorf("wf_http_requests_total{%s,%s} = %v (ok=%v), want %v", tc.route, tc.class, got, ok, tc.want)
		}
	}
	if v, ok := seriesValue(reg, "wf_submissions_accepted_total"); !ok || v != 1 {
		t.Errorf("wf_submissions_accepted_total = %v (ok=%v), want 1", v, ok)
	}
	if v, ok := seriesValue(reg, "wf_submissions_rejected_total", "unknown_rule"); !ok || v != 1 {
		t.Errorf("wf_submissions_rejected_total{unknown_rule} = %v (ok=%v), want 1", v, ok)
	}

	// The latency histogram saw every request on each instrumented route.
	for _, fam := range reg.Gather() {
		if fam.Name != "wf_http_request_duration_seconds" {
			continue
		}
		var total uint64
		for _, s := range fam.Series {
			if s.Hist != nil {
				total += s.Hist.Count
			}
		}
		if total != 5 {
			t.Errorf("latency histogram count = %d, want 5", total)
		}
	}

	// /metrics itself serves the families in Prometheus text format and is
	// not instrumented (scrapes must not move the histograms they read).
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := new(bytes.Buffer)
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	text := body.String()
	for _, want := range []string{
		"# TYPE wf_http_requests_total counter",
		"# TYPE wf_http_request_duration_seconds histogram",
		`wf_http_requests_total{route="/submit",code="4xx"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics output missing %q", want)
		}
	}
	if v, _ := seriesValue(reg, "wf_http_requests_total", "/metrics", "2xx"); v != 0 {
		t.Errorf("/metrics scrape was itself counted: %v", v)
	}
}

func TestCertifyStatsReachRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	c := New("Hiring", workload.Hiring())
	c.Instrument(reg)

	// Hiring is 3-bounded but not transparent for sue: the bounded check
	// passes, the transparency check returns a violation — both invocations
	// and the combined search effort must land in the registry.
	err := c.Certify(context.Background(), "sue", 3, core.Options{PoolFresh: 2, MaxTuplesPerRelation: 1})
	if err == nil {
		t.Fatal("expected a transparency violation for sue")
	}
	if v, ok := seriesValue(reg, "wf_decider_runs_total", "bounded", "ok"); !ok || v != 1 {
		t.Errorf("wf_decider_runs_total{bounded,ok} = %v (ok=%v), want 1", v, ok)
	}
	if v, ok := seriesValue(reg, "wf_decider_runs_total", "transparent", "violation"); !ok || v != 1 {
		t.Errorf("wf_decider_runs_total{transparent,violation} = %v (ok=%v), want 1", v, ok)
	}
	if v, ok := seriesValue(reg, "wf_decider_nodes_total"); !ok || v <= 0 {
		t.Errorf("wf_decider_nodes_total = %v (ok=%v), want > 0", v, ok)
	}
	if v, ok := seriesValue(reg, "wf_decider_states_total"); !ok || v <= 0 {
		t.Errorf("wf_decider_states_total = %v (ok=%v), want > 0", v, ok)
	}
}

func TestStatuszReportsDrops(t *testing.T) {
	reg := obs.NewRegistry()
	c := New("Hiring", workload.Hiring())
	c.Instrument(reg)
	_, cancel, err := c.Subscribe("hr", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	// With buffer 1 and no reader, the second notification drops.
	if _, err := c.Submit("hr", "clear", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit("hr", "clear", nil); err != nil {
		t.Fatal(err)
	}

	rr := httptest.NewRecorder()
	StatuszHandler(c, reg).ServeHTTP(rr, httptest.NewRequest("GET", "/statusz", nil))
	var st Statusz
	if err := json.Unmarshal(rr.Body.Bytes(), &st); err != nil {
		t.Fatalf("statusz is not JSON: %v", err)
	}
	if st.DroppedNotifications.Total != 1 {
		t.Errorf("dropped total = %d, want 1", st.DroppedNotifications.Total)
	}
	if st.DroppedNotifications.ByPeer["hr"] != 1 {
		t.Errorf("dropped by_peer[hr] = %d, want 1", st.DroppedNotifications.ByPeer["hr"])
	}
	if st.Subscribers != 1 {
		t.Errorf("subscribers = %d, want 1", st.Subscribers)
	}
	if st.Events != 2 {
		t.Errorf("events = %d, want 2", st.Events)
	}
	if v, ok := seriesValue(reg, "wf_notifications_dropped_total", "hr"); !ok || v != 1 {
		t.Errorf("wf_notifications_dropped_total{hr} = %v (ok=%v), want 1", v, ok)
	}
	if v, ok := seriesValue(reg, "wf_subscribers"); !ok || v != 1 {
		t.Errorf("wf_subscribers = %v (ok=%v), want 1", v, ok)
	}
}
