package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"collabwf/internal/core"
	"collabwf/internal/data"
	"collabwf/internal/design"
	"collabwf/internal/obs"
	"collabwf/internal/prof"
	"collabwf/internal/schema"
	"collabwf/internal/wal"
	"collabwf/internal/workload"
)

func newTestManager(t *testing.T, cfg ManagerConfig) *Manager {
	t.Helper()
	if cfg.Prog == nil {
		cfg.Prog = workload.Hiring()
	}
	if cfg.Workflow == "" {
		cfg.Workflow = "Hiring"
	}
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

func fleetPost(t *testing.T, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	h.ServeHTTP(rec, req)
	return rec
}

// TestManagerLifecycleHTTP exercises the run lifecycle over HTTP: create,
// list, route, archive — with the legacy root paths aliased to the default
// run and the error statuses pinned down.
func TestManagerLifecycleHTTP(t *testing.T) {
	m := newTestManager(t, ManagerConfig{})
	h := m.Handler()

	if rec := fleetPost(t, h, "/runs", `{"id":"alpha"}`); rec.Code != http.StatusCreated {
		t.Fatalf("create alpha: status %d: %s", rec.Code, rec.Body.String())
	}
	if rec := fleetPost(t, h, "/runs", `{"id":"alpha"}`); rec.Code != http.StatusConflict {
		t.Fatalf("duplicate create: status %d, want 409", rec.Code)
	}
	if rec := fleetPost(t, h, "/runs", `{"id":"../escape"}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("invalid id: status %d, want 400", rec.Code)
	}
	if rec := fleetPost(t, h, "/runs", `{"id":"x","extra":true}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("unknown field: status %d, want 400", rec.Code)
	}

	// Submissions route by run id; the legacy root path hits the default run.
	submit := func(path string) *httptest.ResponseRecorder {
		return fleetPost(t, h, path, `{"peer":"hr","rule":"clear","bindings":{"x":"sue"}}`)
	}
	if rec := submit("/runs/alpha/submit"); rec.Code != http.StatusOK {
		t.Fatalf("submit alpha: status %d: %s", rec.Code, rec.Body.String())
	}
	if rec := submit("/submit"); rec.Code != http.StatusOK {
		t.Fatalf("legacy submit: status %d: %s", rec.Code, rec.Body.String())
	}
	if rec := submit("/runs/ghost/submit"); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown-run submit: status %d, want 404", rec.Code)
	}
	alpha, _ := m.Run("alpha")
	def := m.Default()
	if alpha.Len() != 1 || def.Len() != 1 {
		t.Fatalf("run lengths alpha=%d default=%d, want 1/1", alpha.Len(), def.Len())
	}

	// The list reports both runs sorted by id.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/runs", nil))
	var list RunsStatusz
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatalf("GET /runs not JSON: %v", err)
	}
	if list.Active != 2 || list.Created != 2 || list.Events != 2 ||
		len(list.Runs) != 2 || list.Runs[0].ID != "alpha" || list.Runs[1].ID != DefaultRun {
		t.Fatalf("GET /runs = %+v", list)
	}

	// Archive: the run disappears from routing; the default run refuses.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodDelete, "/runs/alpha", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("archive alpha: status %d: %s", rec.Code, rec.Body.String())
	}
	if rec := submit("/runs/alpha/submit"); rec.Code != http.StatusNotFound {
		t.Fatalf("submit to archived run: status %d, want 404", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodDelete, "/runs/alpha", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("double archive: status %d, want 404", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodDelete, "/runs/"+DefaultRun, nil))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("archive default: status %d, want 400", rec.Code)
	}
}

// TestManagerDurableRecovery: a durable fleet recovers every non-archived
// run from its own directory — the default run from the data-dir root (a
// pre-fleet layout), named runs from DataDir/runs/<id> — and archived runs
// stay on disk but out of the fleet.
func TestManagerDurableRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := ManagerConfig{
		DataDir:    dir,
		Durability: DurabilityConfig{Sync: wal.SyncAlways, SnapshotEvery: 4},
	}
	m := newTestManager(t, cfg)
	for _, id := range []string{"beta", "gamma"} {
		if err := m.CreateRun(id); err != nil {
			t.Fatal(err)
		}
	}
	want := map[string]int{DefaultRun: 3, "beta": 5, "gamma": 1}
	for id, n := range want {
		c, _ := m.Run(id)
		for i := 0; i < n; i++ {
			if _, err := c.Submit("hr", "clear", map[string]data.Value{"x": data.Value(fmt.Sprintf("%s-%d", id, i))}); err != nil {
				t.Fatalf("submit %s/%d: %v", id, i, err)
			}
		}
	}
	if err := m.ArchiveRun("gamma"); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	m2 := newTestManager(t, cfg)
	if _, ok := m2.Run("gamma"); ok {
		t.Fatal("archived run gamma resurrected by the recovery scan")
	}
	for _, id := range []string{DefaultRun, "beta"} {
		c, ok := m2.Run(id)
		if !ok {
			t.Fatalf("run %s not recovered", id)
		}
		if c.Len() != want[id] {
			t.Fatalf("run %s recovered %d events, want %d", id, c.Len(), want[id])
		}
		if got := c.RunID(); got != id {
			t.Fatalf("recovered run id %q, want %q", got, id)
		}
	}
	// The recovery scan counts recovered runs as created.
	st := m2.RunsStatus()
	if st.Active != 2 || st.Created != 2 {
		t.Fatalf("recovered fleet status = %+v", st)
	}
}

// TestIdempotencyScopedByRun is the regression test for the fleet bugfix:
// the dedupe map used to be keyed by the raw client key, so the same
// Idempotency-Key on two different runs collided — the second run's
// submission was answered with the first run's cached index instead of
// applying. Scoped by run id, each run deduplicates independently.
func TestIdempotencyScopedByRun(t *testing.T) {
	dir := t.TempDir()
	cfg := ManagerConfig{
		DataDir:    dir,
		Durability: DurabilityConfig{Sync: wal.SyncAlways, SnapshotEvery: 100},
	}
	m := newTestManager(t, cfg)
	if err := m.CreateRun("other"); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	def := m.Default()
	other, _ := m.Run("other")

	const key = "shared-key-1"
	r1, err := def.SubmitIdemCtx(ctx, "hr", "clear", map[string]data.Value{"x": "a"}, key)
	if err != nil {
		t.Fatal(err)
	}
	// Same raw key, different run: must APPLY, not replay the default run's
	// cached result.
	r2, err := other.SubmitIdemCtx(ctx, "hr", "clear", map[string]data.Value{"x": "b"}, key)
	if err != nil {
		t.Fatal(err)
	}
	if other.Len() != 1 {
		t.Fatalf("second run did not apply: len=%d, want 1", other.Len())
	}
	if r2.Index != 0 {
		t.Fatalf("second run's index = %d, want 0 (its own run, not run %d of the default)", r2.Index, r1.Index)
	}
	// Same key, same run: deduped.
	r3, err := def.SubmitIdemCtx(ctx, "hr", "clear", map[string]data.Value{"x": "a"}, key)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Index != r1.Index || def.Len() != 1 {
		t.Fatalf("same-run retry: index=%d len=%d, want replay of index %d without applying",
			r3.Index, def.Len(), r1.Index)
	}

	// The scoping survives recovery: the window is rebuilt under the same
	// run-scoped keys, so a post-restart retry still replays per run.
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	m2 := newTestManager(t, cfg)
	def2 := m2.Default()
	other2, _ := m2.Run("other")
	r4, err := def2.SubmitIdemCtx(ctx, "hr", "clear", map[string]data.Value{"x": "a"}, key)
	if err != nil {
		t.Fatal(err)
	}
	if r4.Index != r1.Index || def2.Len() != 1 {
		t.Fatalf("default-run retry after recovery: index=%d len=%d, want replay of index %d",
			r4.Index, def2.Len(), r1.Index)
	}
	r5, err := other2.SubmitIdemCtx(ctx, "hr", "clear", map[string]data.Value{"x": "b"}, key)
	if err != nil {
		t.Fatal(err)
	}
	if r5.Index != 0 || other2.Len() != 1 {
		t.Fatalf("other-run retry after recovery: index=%d len=%d, want replay of index 0",
			r5.Index, other2.Len())
	}
}

// driveProfiledSession runs the scripted guarded session of
// TestProfilerScriptedSession against one coordinator: five accepted
// events, one guard-rejected hire, one certification.
func driveProfiledSession(t *testing.T, c *Coordinator, profiler *prof.Profiler) {
	t.Helper()
	mustSubmit := func(peer schema.Peer, rule string, bind map[string]data.Value) *SubmitResult {
		t.Helper()
		res, err := c.Submit(peer, rule, bind)
		if err != nil {
			t.Fatalf("%s: %v", rule, err)
		}
		return res
	}
	mustSubmit("hr", "stage_refresh_hr", nil)
	res := mustSubmit("hr", "clear", nil)
	cand := data.Value(strings.TrimSuffix(strings.TrimPrefix(res.Updates[0], "+Cleared("), ")"))
	mustSubmit("cfo", "stage_refresh_cfo", nil)
	mustSubmit("cfo", "cfo_ok", map[string]data.Value{"x": cand})
	mustSubmit("ceo", "approve", map[string]data.Value{"x": cand})
	if _, err := c.Submit("hr", "hire", map[string]data.Value{"x": cand}); err == nil {
		t.Fatal("over-budget hire must be rejected by the guard")
	}
	_ = c.Certify(context.Background(), "sue", 2,
		core.Options{Profiler: profiler, PoolFresh: 2, MaxTuplesPerRelation: 1})
}

// TestProfilerPerRunAttribution is the two-coordinator acceptance test for
// the cond-counter bugfix: two coordinators in one process, each with its
// own profiler, run the same scripted session; each profiler's counters —
// the condition-evaluation tallies included, which used to flow through one
// process-global sink — must equal the single-coordinator baseline exactly.
// Any cross-talk doubles (or splits) a counter and fails the comparison.
func TestProfilerPerRunAttribution(t *testing.T) {
	newGuarded := func() (*Coordinator, *prof.Profiler, func()) {
		staged, err := design.Staged(workload.Hiring(), "sue")
		if err != nil {
			t.Fatal(err)
		}
		c := New("Staged", staged)
		p := prof.New()
		c.SetProfiler(p)
		restore := p.InstallCond()
		if err := c.Guard("sue", 2); err != nil {
			t.Fatal(err)
		}
		return c, p, restore
	}

	// Baseline: one coordinator, alone in the process.
	cb, pb, restoreB := newGuarded()
	driveProfiledSession(t, cb, pb)
	restoreB()
	base := pb.Snapshot()
	if base.Cond.Total == 0 {
		t.Fatal("baseline session evaluated no conditions — the attribution test would be vacuous")
	}

	// Fleet: two coordinators, two profilers, both sessions interleaved.
	// Only the first InstallCond owns the process-global sink; attribution
	// flows through each run's own counter threading regardless.
	c1, p1, restore1 := newGuarded()
	c2, p2, restore2 := newGuarded()
	defer restore1()
	defer restore2()
	driveProfiledSession(t, c1, p1)
	driveProfiledSession(t, c2, p2)
	s1, s2 := p1.Snapshot(), p2.Snapshot()

	for name, s := range map[string]*prof.Snapshot{"first": s1, "second": s2} {
		if s.Cond != base.Cond {
			t.Errorf("%s coordinator's cond counts diverge from the solo baseline (cross-run cross-talk):\n got:  %+v\n want: %+v",
				name, s.Cond, base.Cond)
		}
		if s.Totals.Fires != base.Totals.Fires || s.Totals.Replays != base.Totals.Replays ||
			s.Totals.Attempts != base.Totals.Attempts || s.Totals.Candidates != base.Totals.Candidates {
			t.Errorf("%s coordinator's totals diverge from the solo baseline:\n got:  %+v\n want: %+v",
				name, s.Totals, base.Totals)
		}
	}
	// Belt and suspenders: the sum of the two fleet profilers is exactly
	// twice the baseline — nothing was dropped on the floor either.
	if got := s1.Cond.Total + s2.Cond.Total; got != 2*base.Cond.Total {
		t.Errorf("fleet cond totals sum to %d, want %d", got, 2*base.Cond.Total)
	}
}

// TestRunLabeledMetrics: under a Manager with a registry, every coordinator
// family carries the run label, the fleet aggregates exist, and the fleet
// /statusz carries the runs block.
func TestRunLabeledMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	m := newTestManager(t, ManagerConfig{Registry: reg})
	h := m.Handler()
	if rec := fleetPost(t, h, "/runs", `{"id":"alpha"}`); rec.Code != http.StatusCreated {
		t.Fatalf("create alpha: %d", rec.Code)
	}
	submit := func(path, who string) {
		t.Helper()
		rec := fleetPost(t, h, path, `{"peer":"hr","rule":"clear","bindings":{"x":"`+who+`"}}`)
		if rec.Code != http.StatusOK {
			t.Fatalf("submit %s: status %d: %s", path, rec.Code, rec.Body.String())
		}
	}
	submit("/submit", "sue")
	submit("/runs/alpha/submit", "sue")
	submit("/runs/alpha/submit", "bob")

	accepted := map[string]float64{}
	var runsActive, fleetEvents float64
	for _, fam := range reg.Gather() {
		switch fam.Name {
		case "wf_submissions_accepted_total":
			for _, s := range fam.Series {
				if len(s.Labels) != 1 || s.Labels[0].Name != "run" {
					t.Fatalf("accepted series labels = %+v, want one run label", s.Labels)
				}
				accepted[s.Labels[0].Value] = s.Value
			}
		case "wf_runs_active":
			runsActive = fam.Series[0].Value
		case "wf_fleet_events":
			fleetEvents = fam.Series[0].Value
		}
	}
	if accepted[DefaultRun] != 1 || accepted["alpha"] != 2 {
		t.Fatalf("accepted by run = %v, want default:1 alpha:2", accepted)
	}
	if runsActive != 2 {
		t.Fatalf("wf_runs_active = %v, want 2", runsActive)
	}
	if fleetEvents != 3 {
		t.Fatalf("wf_fleet_events = %v, want 3", fleetEvents)
	}

	// The fleet statusz: default run's page plus the runs block.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/statusz", nil))
	var st Statusz
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("/statusz not JSON: %v", err)
	}
	if st.Run != DefaultRun {
		t.Fatalf("statusz run = %q, want %q", st.Run, DefaultRun)
	}
	if st.Runs == nil || st.Runs.Active != 2 || st.Runs.Events != 3 || len(st.Runs.Runs) != 2 {
		t.Fatalf("statusz runs block = %+v", st.Runs)
	}
	// Per-run rows carry the gauges that used to be process-global.
	byID := map[string]RunStatus{}
	for _, r := range st.Runs.Runs {
		byID[r.ID] = r
	}
	if byID["alpha"].Events != 2 || byID[DefaultRun].Events != 1 {
		t.Fatalf("per-run events = %+v", byID)
	}
}

// TestManagerSharedHTTPMetrics: HTTP-layer families stay unlabeled and
// shared across the fleet (one scrape surface), while coordinator families
// split by run — the two metric modes coexist on one registry.
func TestManagerSharedHTTPMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	m := newTestManager(t, ManagerConfig{Registry: reg})
	h := m.Handler()
	if rec := fleetPost(t, h, "/runs", `{"id":"alpha"}`); rec.Code != http.StatusCreated {
		t.Fatalf("create: %d", rec.Code)
	}
	for _, path := range []string{"/view?peer=hr", "/runs/alpha/view?peer=hr"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("GET %s: %d", path, rec.Code)
		}
	}
	var total float64
	for _, fam := range reg.Gather() {
		if fam.Name != "wf_http_requests_total" {
			continue
		}
		for _, s := range fam.Series {
			for _, l := range s.Labels {
				if l.Name == "run" {
					t.Fatalf("HTTP family grew a run label: %+v", s.Labels)
				}
			}
			total += s.Value
		}
	}
	if total < 2 {
		t.Fatalf("wf_http_requests_total = %v, want ≥ 2 (both runs' requests pooled)", total)
	}
}
