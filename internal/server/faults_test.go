package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"collabwf/internal/obs"
	"collabwf/internal/wal"
	"collabwf/internal/workload"
)

// TestStalledWALSurfacedInHealth is the regression test for silent stalls:
// while the WAL refuses appends after a failed group sync, /readyz must
// answer 503 and /statusz must carry the stall error, and both must clear
// once the operator realigns and resumes.
func TestStalledWALSurfacedInHealth(t *testing.T) {
	fp := wal.NewFailpoints()
	c, err := NewDurable("Hiring", workload.Hiring(), DurabilityConfig{
		Dir: t.TempDir(), Sync: wal.SyncAlways, Failpoints: fp,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Submit("hr", "clear", nil); err != nil {
		t.Fatal(err)
	}
	// /statusz is only mounted when metrics are wired, as in wfserve.
	ts := httptest.NewServer(NewHandler(c, HTTPOptions{Metrics: NewMetrics(obs.NewRegistry())}))
	defer ts.Close()

	getStatusz := func() Statusz {
		t.Helper()
		resp, err := http.Get(ts.URL + "/statusz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var s Statusz
		if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
			t.Fatal(err)
		}
		return s
	}
	readyz := func() int {
		t.Helper()
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if got := readyz(); got != http.StatusOK {
		t.Fatalf("/readyz = %d on a healthy coordinator", got)
	}
	if s := getStatusz(); s.WALStalled != "" {
		t.Fatalf("wal_stalled = %q on a healthy coordinator", s.WALStalled)
	}

	// Stall the WAL underneath the coordinator: a failed group sync on an
	// append issued outside the submit path (so nothing auto-realigns).
	fp.FailNextSync(fmt.Errorf("EIO: disk on fire"))
	cm, err := c.log.AppendBuffered(context.Background(), wal.Record{Seq: c.Len()})
	if err != nil {
		t.Fatal(err)
	}
	if err := cm.Wait(); err == nil {
		t.Fatal("commit resolved durable through a failed group sync")
	}
	fp.Reset()

	if got := readyz(); got != http.StatusServiceUnavailable {
		t.Fatalf("/readyz = %d while the WAL is stalled, want 503", got)
	}
	s := getStatusz()
	if s.WALStalled == "" {
		t.Fatal("statusz does not carry wal_stalled during a stall")
	}

	// Operator realign: the run already matches the durable prefix (the
	// doomed append never touched it), so Resume alone recovers.
	if got, want := c.log.Accepted(), c.Len(); got != want {
		t.Fatalf("Accepted() = %d, run length = %d — realign would lose events", got, want)
	}
	c.log.Resume()
	if got := readyz(); got != http.StatusOK {
		t.Fatalf("/readyz = %d after realign+Resume, want 200", got)
	}
	if s := getStatusz(); s.WALStalled != "" {
		t.Fatalf("wal_stalled = %q after realign+Resume", s.WALStalled)
	}
	if _, err := c.Submit("hr", "clear", nil); err != nil {
		t.Fatalf("submit after realign: %v", err)
	}
}

// TestSnapshotBusyDeferredAndRetried: a threshold snapshot that lands while
// commits are in flight is deferred (wal.ErrBusy, counted on
// wf_wal_snapshot_deferred_total), not failed — and the armed retry writes
// it as soon as the queue drains, without waiting for the next threshold.
func TestSnapshotBusyDeferredAndRetried(t *testing.T) {
	reg := obs.NewRegistry()
	fp := wal.NewFailpoints()
	c, err := NewDurable("Hiring", workload.Hiring(), DurabilityConfig{
		Dir: t.TempDir(), Sync: wal.SyncAlways, SnapshotEvery: 1,
		Failpoints: fp, Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Submit("hr", "clear", nil); err != nil {
		t.Fatal(err)
	}
	snapsBefore, _ := counterVal(reg, "wf_wal_snapshots_total")

	// Hold a commit in flight (slow fsync, issued outside the submit path so
	// no submit-side snapshot races the retry timer), then cross the
	// threshold: the snapshot must defer, not fail.
	fp.SlowSync(100 * time.Millisecond)
	cm, err := c.log.AppendBuffered(context.Background(), wal.Record{Seq: c.Len()})
	if err != nil {
		t.Fatal(err)
	}
	c.mu.Lock()
	c.sinceSnapshot = c.snapshotEvery
	c.maybeSnapshotLocked(context.Background())
	armed := c.snapRetryArmed
	snapErr := c.lastSnapErr
	c.mu.Unlock()
	if !armed {
		t.Fatal("busy snapshot did not arm the deferred retry")
	}
	if snapErr != nil {
		t.Fatalf("busy snapshot recorded as a failure: %v", snapErr)
	}
	if got, ok := counterVal(reg, "wf_wal_snapshot_deferred_total"); !ok || got < 1 {
		t.Fatalf("wf_wal_snapshot_deferred_total = %v (ok=%v), want >= 1", got, ok)
	}

	if err := cm.Wait(); err != nil {
		t.Fatal(err)
	}
	fp.Reset()
	// The queue has drained; the retry timer must land the snapshot on its
	// own — nothing else crosses the threshold again.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if got, _ := counterVal(reg, "wf_wal_snapshots_total"); got > snapsBefore {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("deferred snapshot never retried after the queue drained")
		}
		time.Sleep(5 * time.Millisecond)
	}
	c.mu.Lock()
	since := c.sinceSnapshot
	c.mu.Unlock()
	if since != 0 {
		t.Fatalf("sinceSnapshot = %d after the deferred snapshot landed, want 0", since)
	}
}

// counterVal sums a counter family on the registry.
func counterVal(reg *obs.Registry, name string) (float64, bool) {
	for _, fam := range reg.Gather() {
		if fam.Name != name {
			continue
		}
		total := 0.0
		for _, s := range fam.Series {
			total += s.Value
		}
		return total, true
	}
	return 0, false
}

// TestRetryAfterHintScalesWithBacklog: the 429/503 Retry-After hint derives
// from observed fsync latency — an in-memory or idle coordinator says 1s, a
// coordinator whose fsyncs take over a second says more.
func TestRetryAfterHintScalesWithBacklog(t *testing.T) {
	if got := New("Hiring", workload.Hiring()).RetryAfterHint(); got != 1 {
		t.Fatalf("in-memory hint = %d, want 1", got)
	}

	fp := wal.NewFailpoints()
	c, err := NewDurable("Hiring", workload.Hiring(), DurabilityConfig{
		Dir: t.TempDir(), Sync: wal.SyncAlways, Failpoints: fp,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got := c.RetryAfterHint(); got != 1 {
		t.Fatalf("idle durable hint = %d, want 1", got)
	}
	// One fsync at ~1.2s seeds the latency average above a second.
	fp.SlowSync(1200 * time.Millisecond)
	if _, err := c.Submit("hr", "clear", nil); err != nil {
		t.Fatal(err)
	}
	fp.Reset()
	if got := c.RetryAfterHint(); got < 2 || got > 30 {
		t.Fatalf("hint after 1.2s fsync = %d, want in [2, 30]", got)
	}
}

// TestRecoverByteFlipMatrix flips every byte of a real wal.log and
// snapshot.json (one at a time) and recovers: the default policy must
// either refuse cleanly or come back with a sane prefix of the original
// run; strict mode must never invent state. Nothing may panic.
func TestRecoverByteFlipMatrix(t *testing.T) {
	prog := workload.Hiring()
	seedDir := t.TempDir()
	c, err := NewDurable("Hiring", prog, DurabilityConfig{Dir: seedDir, SnapshotEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	const origLen = 3
	for i := 0; i < origLen; i++ {
		if _, err := c.Submit("hr", "clear", nil); err != nil {
			t.Fatal(err)
		}
	}
	// Crash, not Close: Close would fold the tail into a final snapshot and
	// leave no log bytes to corrupt.
	if _, _, err := c.Crash(); err != nil {
		t.Fatal(err)
	}
	logBytes, err := os.ReadFile(filepath.Join(seedDir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	snapBytes, err := os.ReadFile(filepath.Join(seedDir, "snapshot.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(logBytes) == 0 {
		t.Fatal("seed log is empty — the matrix would test nothing")
	}
	const snapLen = 2 // SnapshotEvery: 2 of the 3 events are in the snapshot

	root := t.TempDir()
	tryRecover := func(name string, log, snap []byte, strict bool) (int, error) {
		dir := filepath.Join(root, name)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "wal.log"), log, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "snapshot.json"), snap, 0o644); err != nil {
			t.Fatal(err)
		}
		rc, err := Recover("Hiring", prog, DurabilityConfig{Dir: dir, Strict: strict})
		if err != nil {
			return 0, err
		}
		n := rc.Len()
		rc.Close()
		return n, nil
	}

	// Sanity: the pristine pair recovers the full run.
	if n, err := tryRecover("pristine", logBytes, snapBytes, false); err != nil || n != origLen {
		t.Fatalf("pristine recovery: len=%d err=%v, want %d,nil", n, err, origLen)
	}

	for i := range logBytes {
		mut := append([]byte(nil), logBytes...)
		mut[i] ^= 0xFF
		for _, strict := range []bool{false, true} {
			n, err := tryRecover(fmt.Sprintf("log-%d-%v", i, strict), mut, snapBytes, strict)
			if err != nil {
				continue // clean refusal is always acceptable
			}
			if n < snapLen || n > origLen {
				t.Fatalf("log byte %d (strict=%v): recovered %d events, want in [%d, %d]",
					i, strict, n, snapLen, origLen)
			}
		}
	}
	for i := range snapBytes {
		mut := append([]byte(nil), snapBytes...)
		mut[i] ^= 0xFF
		for _, strict := range []bool{false, true} {
			n, err := tryRecover(fmt.Sprintf("snap-%d-%v", i, strict), logBytes, mut, strict)
			if err != nil {
				continue // a corrupt snapshot is fatal under both policies
			}
			// Accepting a flipped snapshot is only tolerable if the flip was
			// immaterial (it was not — the CRC covers the whole decoded
			// value), so a success must reproduce the exact original run.
			if n != origLen {
				t.Fatalf("snap byte %d (strict=%v): accepted a corrupt snapshot, recovered %d events", i, strict, n)
			}
		}
	}
}
