package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
)

// Handler exposes the fleet as one HTTP API:
//
//	POST   /runs               {"id": "r1"}   create a run
//	GET    /runs               list the live fleet
//	DELETE /runs/{id}          archive a run (final snapshot + WAL close)
//	ANY    /runs/{id}/...      the full single-run API, routed to the shard
//	ANY    /...                legacy single-run paths, aliased to the
//	                           default run
//	GET    /statusz            the default run's page plus the fleet block
//
// Shard routing is longest-prefix: /runs/{id}/submit strips to /submit and
// runs through the shard's own handler, so every middleware, metric label
// and trace a single-run server would produce appears unchanged — just
// attributed to the run.
func (m *Manager) Handler() http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /runs", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			ID string `json:"id"`
		}
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4096))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
			return
		}
		if err := m.CreateRun(req.ID); err != nil {
			status := http.StatusBadRequest
			if strings.Contains(err.Error(), "already exists") {
				status = http.StatusConflict
			}
			httpError(w, status, err)
			return
		}
		w.WriteHeader(http.StatusCreated)
		_ = json.NewEncoder(w).Encode(map[string]any{"id": req.ID, "created": true})
	})

	mux.HandleFunc("GET /runs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, m.RunsStatus())
	})

	mux.HandleFunc("DELETE /runs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if err := m.ArchiveRun(id); err != nil {
			status := http.StatusBadRequest
			if strings.Contains(err.Error(), "unknown run") {
				status = http.StatusNotFound
			}
			httpError(w, status, err)
			return
		}
		writeJSON(w, map[string]any{"id": id, "archived": true})
	})

	// Shard dispatch: /runs/{id}/... → the shard's own handler with the
	// prefix stripped, so its routes ("/submit", "/view", …) match as if it
	// were a single-run server.
	mux.HandleFunc("/runs/{id}/{rest...}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		s, ok := m.get(id)
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("server: unknown run %q", id))
			return
		}
		http.StripPrefix("/runs/"+id, s.h).ServeHTTP(w, r)
	})

	// Fleet statusz: the default run's page plus the runs block. Registered
	// explicitly so it wins over the "/" legacy alias below (most-specific
	// pattern), replacing the default shard's runs-blind page.
	if m.cfg.Registry != nil {
		mux.HandleFunc("/statusz", func(w http.ResponseWriter, r *http.Request) {
			st := statuszFor(m.Default(), m.cfg.Registry, m.start)
			st.Runs = m.RunsStatus()
			writeJSON(w, st)
		})
	}

	// Legacy single-run paths alias to the default run: a pre-fleet client
	// (or curl muscle memory) keeps working against /submit, /view, ….
	def, _ := m.get(DefaultRun)
	mux.Handle("/", def.h)

	return Recovery(mux)
}
