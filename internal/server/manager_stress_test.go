package server

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"collabwf/internal/core"
	"collabwf/internal/data"
	"collabwf/internal/schema"
	"collabwf/internal/wal"
	"collabwf/internal/workload"
)

// TestFleetStressRace hammers one Manager with eight runs at once — every
// run's driver pushes candidates through the full hiring pipeline while
// HTTP readers poll views and transitions across the fleet and two runs
// certify concurrently. Afterwards each run's served answers (trace, views,
// scenarios) must be byte-identical to a sequential replay of that run's
// submissions on a fresh coordinator, and a full-fleet crash must recover
// every run to exactly its pre-crash state. Run under -race this is the
// isolation proof for the shard layer: no run's locks, caches, or counters
// may bleed into a sibling's.
func TestFleetStressRace(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet stress skipped in -short mode")
	}
	prog := workload.Hiring()
	dir := t.TempDir()
	cfg := ManagerConfig{
		Workflow: "Hiring",
		Prog:     prog,
		DataDir:  dir,
		// SyncAlways so everything acked survives the crash below and the
		// recovered fleet can be compared byte-for-byte.
		Durability: DurabilityConfig{Sync: wal.SyncAlways, SnapshotEvery: 8},
	}
	m := newTestManager(t, cfg)

	const fleet = 8
	const cands = 3 // pipelines per run: 4 events each
	ids := make([]string, fleet)
	for i := range ids {
		ids[i] = fmt.Sprintf("run-%d", i)
		if err := m.CreateRun(ids[i]); err != nil {
			t.Fatal(err)
		}
	}
	h := m.Handler()

	// Readers poll the HTTP surface across the whole fleet for the entire
	// drive; any non-200 is a routing or isolation failure.
	stop := make(chan struct{})
	var readErrs atomic.Int64
	var readerWG sync.WaitGroup
	for r := 0; r < 4; r++ {
		readerWG.Add(1)
		go func(r int) {
			defer readerWG.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id := ids[(r+i)%fleet]
				for _, path := range []string{
					"/runs/" + id + "/view?peer=hr",
					"/runs/" + id + "/transitions?peer=sue&from=0",
				} {
					rec := httptest.NewRecorder()
					h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
					if rec.Code != http.StatusOK {
						readErrs.Add(1)
					}
				}
			}
		}(r)
	}

	// Two runs certify while everyone submits: the search must not block or
	// corrupt sibling shards.
	var certifyWG sync.WaitGroup
	for _, id := range ids[:2] {
		certifyWG.Add(1)
		go func(id string) {
			defer certifyWG.Done()
			c, _ := m.Run(id)
			_ = c.Certify(context.Background(), "sue", 4,
				core.Options{PoolFresh: 2, MaxTuplesPerRelation: 1})
		}(id)
	}

	type submission struct {
		peer schema.Peer
		rule string
		bind map[string]data.Value
	}
	subs := make([][]submission, fleet)
	errs := make([]error, fleet)
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			c, ok := m.Run(id)
			if !ok {
				errs[i] = fmt.Errorf("run %s not routable", id)
				return
			}
			for k := 0; k < cands; k++ {
				cand := data.Value(fmt.Sprintf("%s-c%d", id, k))
				bind := map[string]data.Value{"x": cand}
				for _, s := range []submission{
					{"hr", "clear", bind},
					{"cfo", "cfo_ok", bind},
					{"ceo", "approve", bind},
					{"hr", "hire", bind},
				} {
					if _, err := c.Submit(s.peer, s.rule, s.bind); err != nil {
						errs[i] = fmt.Errorf("%s %s/%s: %w", id, s.peer, s.rule, err)
						return
					}
					subs[i] = append(subs[i], s)
				}
			}
		}(i, id)
	}
	wg.Wait()
	certifyWG.Wait()
	close(stop)
	readerWG.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("driver %d: %v", i, err)
		}
	}
	if n := readErrs.Load(); n != 0 {
		t.Fatalf("%d reader requests failed during the drive", n)
	}

	// Byte-identical answers: replaying each run's exact submissions,
	// sequentially, on a fresh in-memory coordinator must reproduce the
	// served trace, every peer view, and every peer scenario.
	states := make(map[string]string, fleet)
	for i, id := range ids {
		c, _ := m.Run(id)
		if c.Len() != cands*4 {
			t.Fatalf("run %s length %d, want %d", id, c.Len(), cands*4)
		}
		want := captureState(t, c)
		states[id] = want
		replay := New("Hiring", prog)
		for j, s := range subs[i] {
			if _, err := replay.Submit(s.peer, s.rule, s.bind); err != nil {
				t.Fatalf("replaying %s submission %d: %v", id, j, err)
			}
		}
		if got := captureState(t, replay); got != want {
			t.Fatalf("run %s diverged from its sequential replay:\n got: %s\nwant: %s", id, got, want)
		}
	}

	// Full-fleet crash: every shard loses its process image at once; a fresh
	// manager's recovery scan must bring every run back byte-identical.
	for _, s := range m.allShards() {
		if _, _, err := s.c.Crash(); err != nil {
			t.Fatalf("crashing run %s: %v", s.id, err)
		}
	}
	m2 := newTestManager(t, cfg)
	for _, id := range ids {
		c, ok := m2.Run(id)
		if !ok {
			t.Fatalf("run %s not recovered after fleet crash", id)
		}
		if got := captureState(t, c); got != states[id] {
			t.Fatalf("run %s recovered state diverged:\n got: %s\nwant: %s", id, got, states[id])
		}
	}
}
