package core

import (
	"strings"
	"testing"

	"collabwf/internal/data"
	"collabwf/internal/program"
	"collabwf/internal/workload"
)

func TestExplainerApproval(t *testing.T) {
	_, r := workload.Approval()
	ex := NewExplainer(r, "applicant")
	if got := ex.MinimalScenario(); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("MinimalScenario=%v, want [2 3]", got)
	}
	// Event 1 (delete ok) is explained by its lifecycle boundaries.
	if got := ex.ExplainEvent(1); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("ExplainEvent(1)=%v", got)
	}
	sub, err := ex.ScenarioRun()
	if err != nil {
		t.Fatal(err)
	}
	if sub.Len() != 2 {
		t.Fatalf("scenario run length %d", sub.Len())
	}
}

func TestExplainerIncrementalSync(t *testing.T) {
	p := workload.Hiring()
	r := program.NewRun(p)
	ex := NewExplainer(r, "sue")
	e := r.MustFireRule("clear", nil)
	cand := e.Updates[0].Key
	ex.Sync()
	if got := ex.MinimalScenario(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("after clear: %v", got)
	}
	r.MustFireRule("cfo_ok", map[string]data.Value{"x": cand})
	r.MustFireRule("approve", map[string]data.Value{"x": cand})
	ex.Sync()
	// Nothing new visible: scenario unchanged.
	if got := ex.MinimalScenario(); len(got) != 1 {
		t.Fatalf("after silent events: %v", got)
	}
	r.MustFireRule("hire", map[string]data.Value{"x": cand})
	ex.Sync()
	if got := ex.MinimalScenario(); len(got) != 4 {
		t.Fatalf("after hire: %v", got)
	}
}

func TestReportRendering(t *testing.T) {
	p := workload.Hiring()
	r := program.NewRun(p)
	e := r.MustFireRule("clear", nil)
	cand := e.Updates[0].Key
	r.MustFireRule("cfo_ok", map[string]data.Value{"x": cand})
	r.MustFireRule("approve", map[string]data.Value{"x": cand})
	r.MustFireRule("hire", map[string]data.Value{"x": cand})
	ex := NewExplainer(r, "sue")
	rep := ex.Report()
	if len(rep.Transitions) != 2 {
		t.Fatalf("transitions=%d", len(rep.Transitions))
	}
	hire := rep.Transitions[1]
	if hire.Event.Rule != "hire" || len(hire.Because) != 2 {
		t.Fatalf("hire transition=%+v", hire)
	}
	text := rep.String()
	for _, want := range []string{
		"explanation for peer sue",
		"observed #0 clear by ω (hr)",
		"observed #3 hire by ω (hr)",
		"because #1 cfo_ok by cfo (invisible)",
		"because #2 approve by ceo (invisible)",
		"created Hire(" + string(cand) + ")",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("report missing %q:\n%s", want, text)
		}
	}
	// Each event is explained at most once across transitions.
	if strings.Count(text, "because #1 ") != 1 {
		t.Fatalf("event explained twice:\n%s", text)
	}
}

func TestStaticFacadeRoundTrip(t *testing.T) {
	p := workload.Hiring()
	opts := Options{PoolFresh: 2, MaxTuplesPerRelation: 1}
	if v, err := CheckBounded(p, "sue", 3, opts); err != nil || v != nil {
		t.Fatalf("bounded: %v %v", v, err)
	}
	v, err := CheckTransparent(p, "sue", 3, opts)
	if err != nil {
		t.Fatal(err)
	}
	if v == nil {
		t.Fatal("hiring is not transparent for sue")
	}
	res, err := Synthesize(p, "sue", 3, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.OmegaRules) == 0 {
		t.Fatal("no rules synthesized")
	}
}

func TestReportOnModifications(t *testing.T) {
	// A run with a Modified effect renders a "set" change.
	pr, _, err := workload.Chain(2)
	if err != nil {
		t.Fatal(err)
	}
	r := program.NewRun(pr)
	r.MustFireRule("step1", nil)
	r.MustFireRule("step2", nil)
	ex := NewExplainer(r, "p")
	rep := ex.Report()
	if len(rep.Transitions) != 1 {
		t.Fatalf("transitions=%v", rep.Transitions)
	}
	if rep.Transitions[0].Because[0].Rule != "step1" {
		t.Fatalf("report=%s", rep)
	}
}

func TestReportDescribesDeletions(t *testing.T) {
	_, r := workload.Approval()
	// The cto sees everything: its report covers the deletion f.
	rep := NewExplainer(r, "cto").Report()
	text := rep.String()
	if !strings.Contains(text, "deleted Ok(0)") {
		t.Fatalf("report must describe the deletion:\n%s", text)
	}
	// Own events are labeled without the ω marker.
	if !strings.Contains(text, "observed #0 e by cto:") {
		t.Fatalf("own event mislabeled:\n%s", text)
	}
}
