// Package core is the library's primary API: explanations of collaborative
// workflow runs for individual peers, as developed in the paper.
//
// Runtime explanations (Sections 3–4): for a peer p and a (possibly
// growing) run, the Explainer maintains the unique minimal p-faithful
// scenario — the provably smallest subrun that is observationally
// equivalent for p and faithful to what actually happened — and per-event
// explanations, using the incremental algorithm of Section 4.
//
// Static explanations (Section 5): Synthesize builds, for transparent and
// h-bounded programs, a view program whose rules describe every transition
// the peer can observe together with its provenance; CheckBounded and
// CheckTransparent decide the two hypotheses.
package core

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"collabwf/internal/faithful"
	"collabwf/internal/program"
	"collabwf/internal/schema"
	"collabwf/internal/synth"
	"collabwf/internal/transparency"
)

// RunReader is the read-only view of a run prefix that report building
// needs: event descriptions depend only on the step sequence and the
// schema. *program.Run satisfies it; so does an immutable snapshot of a
// released prefix (the server's lock-free read path).
type RunReader interface {
	Schema() *schema.Collaborative
	Event(i int) *program.Event
	Effects(i int) []program.Effect
	VisibleAt(i int, p schema.Peer) bool
}

// Explainer provides runtime explanations of a run for one peer. It is
// attached to a run and kept current with Sync; maintenance is incremental
// (one T_p application per new event, not a fixpoint recomputation).
type Explainer struct {
	Run  *program.Run
	Peer schema.Peer

	maint *faithful.Maintainer
}

// NewExplainer attaches an explainer for the peer to the run.
func NewExplainer(r *program.Run, peer schema.Peer) *Explainer {
	return &Explainer{Run: r, Peer: peer, maint: faithful.NewMaintainer(r, peer)}
}

// NewExplainerAt attaches an explainer processing only the first n events
// of the run — for callers that expose a bounded prefix (e.g. a durable
// coordinator whose buffered tail is not yet fsynced).
func NewExplainerAt(r *program.Run, peer schema.Peer, n int) *Explainer {
	return &Explainer{Run: r, Peer: peer, maint: faithful.NewMaintainerAt(r, peer, n)}
}

// Sync processes events appended to the run since the last call.
func (e *Explainer) Sync() { e.maint.Sync() }

// SyncTo processes events up to (exclusive) index n only, so explanations
// never describe events past the caller's chosen prefix.
func (e *Explainer) SyncTo(n int) { e.maint.SyncTo(n) }

// MinimalScenario returns the event indices of the unique minimal
// p-faithful scenario of the run (Theorem 4.7) — the canonical explanation
// of everything the peer has observed.
func (e *Explainer) MinimalScenario() []int { return e.maint.Minimal().Sorted() }

// ExplainEvent returns the minimal boundary- and modification-faithful
// explanation of a single event: the events of the run that the given one
// depends on (plus itself), whether or not it is visible to the peer.
func (e *Explainer) ExplainEvent(i int) []int { return e.maint.Explanation(i).Sorted() }

// ScenarioRun replays the minimal faithful scenario as a standalone run
// (Lemma 4.6 guarantees this succeeds).
func (e *Explainer) ScenarioRun() (*program.Run, error) {
	a := faithful.NewAnalysis(e.Run)
	_, sub, err := faithful.Minimal(a, e.Peer)
	return sub, err
}

// Report builds a structured, human-readable explanation of the run from
// the peer's perspective: one section per transition the peer observed,
// listing the (possibly invisible) events that caused it.
func (e *Explainer) Report() *Report {
	// Describe only the synced prefix: events past it (buffered but not
	// yet released by the caller) must not leak into the report.
	return buildReport(e.Run, e.Peer, e.Run.VisibleEvents(e.Peer), e.maint.Len(), e.ExplainEvent)
}

// buildReport is the report construction shared by the live Explainer and
// FrozenExplainer: iterate the visible events below the prefix bound n,
// describing each with the explanation function's (sorted) event indices.
func buildReport(rr RunReader, peer schema.Peer, visible []int, n int, explain func(int) []int) *Report {
	rep := &Report{Peer: peer}
	explained := make(map[int]bool)
	for _, i := range visible {
		if i >= n {
			break
		}
		tr := Transition{Index: i, Event: describeEvent(rr, i, peer)}
		for _, j := range explain(i) {
			if j == i || explained[j] {
				continue
			}
			note := describeEvent(rr, j, peer)
			if j < i {
				tr.Because = append(tr.Because, note)
			} else {
				// Boundary faithfulness can pull in later events (e.g. the
				// deletion closing a lifecycle the transition touched).
				tr.Pending = append(tr.Pending, note)
			}
		}
		sort.Slice(tr.Because, func(a, b int) bool { return tr.Because[a].Index < tr.Because[b].Index })
		sort.Slice(tr.Pending, func(a, b int) bool { return tr.Pending[a].Index < tr.Pending[b].Index })
		for _, n := range tr.Because {
			explained[n.Index] = true
		}
		explained[i] = true
		rep.Transitions = append(rep.Transitions, tr)
	}
	return rep
}

// Freeze captures the explainer's state as an immutable FrozenExplainer
// safe for concurrent lock-free readers. O(1) — see faithful.Maintainer's
// copy-on-write Freeze.
func (e *Explainer) Freeze() *FrozenExplainer {
	return &FrozenExplainer{Peer: e.Peer, fz: e.maint.Freeze()}
}

// FrozenExplainer answers explanation queries over a fixed run prefix — the
// state an Explainer had when Freeze was called — with no locking and no
// access to the live run. The server's read snapshots hold one per peer.
type FrozenExplainer struct {
	Peer schema.Peer

	fz *faithful.Frozen
}

// Len returns the number of events the capture covers.
func (f *FrozenExplainer) Len() int { return f.fz.Len() }

// MinimalScenario returns the event indices of the minimal p-faithful
// scenario as of the freeze point.
func (f *FrozenExplainer) MinimalScenario() []int { return f.fz.Minimal().Sorted() }

// ExplainEvent returns the minimal faithful explanation of event i as of
// the freeze point.
func (f *FrozenExplainer) ExplainEvent(i int) []int { return f.fz.Explanation(i).Sorted() }

// ReportOver builds the peer's explanation report over rr, whose first
// Len() events must be the prefix the explainer was frozen at; visible
// lists the peer's visible event indices over that prefix (ascending).
// Semantically identical to Explainer.Report on the same prefix.
func (f *FrozenExplainer) ReportOver(rr RunReader, visible []int) *Report {
	return buildReport(rr, f.Peer, visible, f.fz.Len(), f.ExplainEvent)
}

// Report is a runtime explanation of a run for one peer.
type Report struct {
	Peer        schema.Peer
	Transitions []Transition
}

// Transition explains one observed transition.
type Transition struct {
	Index int
	Event EventNote
	// Because lists the earlier events (not yet reported under a previous
	// transition) that this transition faithfully depends on.
	Because []EventNote
	// Pending lists later events the faithful explanation includes (right
	// boundaries of lifecycles the transition touched).
	Pending []EventNote
}

// EventNote describes one event for the report.
type EventNote struct {
	Index   int
	Peer    schema.Peer
	Rule    string
	Visible bool
	Changes []string
}

func describeEvent(r RunReader, i int, peer schema.Peer) EventNote {
	e := r.Event(i)
	n := EventNote{Index: i, Peer: e.Peer(), Rule: e.Rule.Name, Visible: r.VisibleAt(i, peer)}
	for _, ef := range r.Effects(i) {
		switch ef.Kind {
		case program.Created:
			n.Changes = append(n.Changes, fmt.Sprintf("created %s%s", ef.Rel, ef.After))
		case program.Deleted:
			n.Changes = append(n.Changes, fmt.Sprintf("deleted %s%s", ef.Rel, ef.Before))
		case program.Modified:
			rel := r.Schema().DB.Relation(ef.Rel)
			attrs := ef.FilledAttrs(rel)
			if len(attrs) == 0 {
				continue
			}
			parts := make([]string, len(attrs))
			for k, a := range attrs {
				pos, _ := rel.Index(a)
				parts[k] = fmt.Sprintf("%s=%s", a, ef.After[pos])
			}
			n.Changes = append(n.Changes, fmt.Sprintf("set %s[%s] %s", ef.Rel, ef.Key, strings.Join(parts, ", ")))
		}
	}
	return n
}

// String renders the report as indented text.
func (rep *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "explanation for peer %s\n", rep.Peer)
	for _, tr := range rep.Transitions {
		who := string(tr.Event.Peer)
		if tr.Event.Peer != rep.Peer {
			who = "ω (" + who + ")"
		}
		fmt.Fprintf(&b, "observed #%d %s by %s: %s\n", tr.Index, tr.Event.Rule, who, strings.Join(tr.Event.Changes, "; "))
		for _, n := range tr.Because {
			vis := "invisible"
			if n.Visible {
				vis = "visible"
			}
			fmt.Fprintf(&b, "    because #%d %s by %s (%s): %s\n", n.Index, n.Rule, n.Peer, vis, strings.Join(n.Changes, "; "))
		}
		for _, n := range tr.Pending {
			fmt.Fprintf(&b, "    later #%d %s by %s: %s\n", n.Index, n.Rule, n.Peer, strings.Join(n.Changes, "; "))
		}
	}
	return b.String()
}

// Options re-exports the static-analysis search options.
type Options = transparency.Options

// CheckBounded decides h-boundedness of a program for a peer
// (Theorem 5.10). A nil violation means the program is h-bounded relative
// to the search caps.
func CheckBounded(p *program.Program, peer schema.Peer, h int, opts Options) (*transparency.BoundViolation, error) {
	return transparency.CheckBounded(p, peer, h, opts)
}

// CheckBoundedCtx is CheckBounded with a cancellable context.
func CheckBoundedCtx(ctx context.Context, p *program.Program, peer schema.Peer, h int, opts Options) (*transparency.BoundViolation, error) {
	return transparency.CheckBoundedCtx(ctx, p, peer, h, opts)
}

// CheckTransparent decides transparency of an h-bounded program for a peer
// (Theorem 5.11).
func CheckTransparent(p *program.Program, peer schema.Peer, h int, opts Options) (*transparency.TransparencyViolation, error) {
	return transparency.CheckTransparent(p, peer, h, opts)
}

// CheckTransparentCtx is CheckTransparent with a cancellable context.
func CheckTransparentCtx(ctx context.Context, p *program.Program, peer schema.Peer, h int, opts Options) (*transparency.TransparencyViolation, error) {
	return transparency.CheckTransparentCtx(ctx, p, peer, h, opts)
}

// Synthesize constructs the view program P@p of a transparent, h-bounded
// program (Theorem 5.13). The body of each ω-rule is the provenance — in
// terms of data the peer sees — of the transition the rule describes.
func Synthesize(p *program.Program, peer schema.Peer, h int, opts Options) (*synth.Result, error) {
	return synth.Synthesize(p, peer, h, opts)
}
