package workload

import (
	"fmt"

	"collabwf/internal/cond"
	"collabwf/internal/data"
	"collabwf/internal/program"
	"collabwf/internal/query"
	"collabwf/internal/rule"
	"collabwf/internal/schema"
)

// Lit is a literal of a propositional formula over variables 0..n-1.
type Lit struct {
	Var int
	Neg bool
}

// CNF is a formula in conjunctive normal form.
type CNF [][]Lit

// Eval evaluates the formula under the assignment (true for set variables).
func (f CNF) Eval(assign []bool) bool {
	for _, clause := range f {
		sat := false
		for _, l := range clause {
			v := assign[l.Var]
			if l.Neg {
				v = !v
			}
			if v {
				sat = true
				break
			}
		}
		if !sat {
			return false
		}
	}
	return true
}

// Satisfiable decides the formula by brute force (used as ground truth in
// tests; n is small).
func (f CNF) Satisfiable(n int) bool {
	assign := make([]bool, n)
	for mask := 0; mask < 1<<n; mask++ {
		for i := range assign {
			assign[i] = mask&(1<<i) != 0
		}
		if f.Eval(assign) {
			return true
		}
	}
	return false
}

// Formula builds the program and run of the Theorem 3.4 reduction: the run
// ρ = r_x1 … r_xn · e is a minimal scenario at peer p iff φ is
// unsatisfiable. The formula must be false under the all-true assignment
// (assumption (*) of the proof).
//
// The schema has one relation R(K, X1..Xn, Q); peer p_xi sees (K, Xi), peer
// q sees (K, Q), and peer p sees K under the selection
//
//	σ_p = (Q = "1") ∧ (∧_i Xi = "1"  ∨  σ_φ)
//
// where σ_φ reads the assignment off the Xi columns.
func Formula(n int, f CNF) (*program.Program, *program.Run, error) {
	for _, clause := range f {
		for _, l := range clause {
			if l.Var < 0 || l.Var >= n {
				return nil, nil, fmt.Errorf("workload: literal variable %d out of range", l.Var)
			}
		}
	}
	allTrue := make([]bool, n)
	for i := range allTrue {
		allTrue[i] = true
	}
	if f.Eval(allTrue) {
		return nil, nil, fmt.Errorf("workload: formula must be false under the all-true assignment")
	}

	attrs := make([]data.Attr, 0, n+1)
	for i := 0; i < n; i++ {
		attrs = append(attrs, data.Attr(fmt.Sprintf("X%d", i)))
	}
	attrs = append(attrs, "Q")
	rel := schema.MustRelation("R", attrs...)
	db := schema.MustDatabase(rel)
	s := schema.NewCollaborative(db)

	for i := 0; i < n; i++ {
		s.MustAddView(schema.MustView(rel, schema.Peer(fmt.Sprintf("px%d", i)),
			[]data.Attr{data.Attr(fmt.Sprintf("X%d", i))}, nil))
	}
	s.MustAddView(schema.MustView(rel, "q", []data.Attr{"Q"}, nil))

	// σ_p.
	beta := make([]cond.Condition, 0, n)
	for i := 0; i < n; i++ {
		beta = append(beta, cond.EqConst{Attr: data.Attr(fmt.Sprintf("X%d", i)), Const: "1"})
	}
	var phi []cond.Condition
	for _, clause := range f {
		var lits []cond.Condition
		for _, l := range clause {
			var c cond.Condition = cond.EqConst{Attr: data.Attr(fmt.Sprintf("X%d", l.Var)), Const: "1"}
			if l.Neg {
				c = cond.Not{C: c}
			}
			lits = append(lits, c)
		}
		phi = append(phi, cond.Or{Cs: lits})
	}
	sigmaP := cond.And{Cs: []cond.Condition{
		cond.EqConst{Attr: "Q", Const: "1"},
		cond.Or{Cs: []cond.Condition{cond.And{Cs: beta}, cond.And{Cs: phi}}},
	}}
	s.MustAddView(schema.MustView(rel, "p", nil, sigmaP))

	var rules []*rule.Rule
	for i := 0; i < n; i++ {
		rules = append(rules, &rule.Rule{
			Name: fmt.Sprintf("rx%d", i),
			Peer: schema.Peer(fmt.Sprintf("px%d", i)),
			Head: []rule.Update{rule.Insert{Rel: "R", Args: []query.Term{query.C("0"), query.C("1")}}},
			Body: query.Query{},
		})
	}
	rules = append(rules, &rule.Rule{
		Name: "e", Peer: "q",
		Head: []rule.Update{rule.Insert{Rel: "R", Args: []query.Term{query.C("0"), query.C("1")}}},
		Body: query.Query{},
	})
	prog, err := program.New(s, rules)
	if err != nil {
		return nil, nil, err
	}
	r := program.NewRun(prog)
	for i := 0; i < n; i++ {
		if _, err := r.FireRule(fmt.Sprintf("rx%d", i), nil); err != nil {
			return nil, nil, err
		}
	}
	if _, err := r.FireRule("e", nil); err != nil {
		return nil, nil, err
	}
	return prog, r, nil
}

// Crowdsourcing builds a task-marketplace workflow with the given number of
// workers — the kind of collaborative application the paper's introduction
// motivates. A requester posts tasks; workers claim them and submit work;
// the platform accepts one submission (closing the task) and issues a
// payment. Workers see the task board, their own claims, work, and
// payments; the platform sees everything; the requester sees tasks,
// open-markers and payments.
//
//	post    at requester: +Task(t, d), +Open(t) :- (t, d fresh)
//	claim_i at w_i:       +Claim(c, t, "w_i") :- Task(t, d), Open(t)
//	submit_i at w_i:      +Work(x, t, "w_i") :- Claim(c, t, "w_i")
//	accept  at platform:  -Open(t), +Done(t, w) :- Open(t), Work(x, t, w)
//	pay     at platform:  +Payment(y, t, w) :- Done(t, w)
func Crowdsourcing(workers int) (*program.Program, error) {
	task := schema.MustRelation("Task", "Desc")
	open := schema.MustRelation("Open")
	claim := schema.MustRelation("Claim", "Task", "Worker")
	work := schema.MustRelation("Work", "Task", "Worker")
	done := schema.MustRelation("Done", "Worker")
	payment := schema.MustRelation("Payment", "Task", "Worker")
	db := schema.MustDatabase(task, open, claim, work, done, payment)
	s := schema.NewCollaborative(db)

	full := func(p schema.Peer, rels ...*schema.Relation) {
		for _, r := range rels {
			s.MustAddView(schema.MustView(r, p, r.Attrs[1:], nil))
		}
	}
	full("platform", task, open, claim, work, done, payment)
	full("requester", task, open, payment)
	workerNames := make([]schema.Peer, workers)
	for i := 0; i < workers; i++ {
		w := schema.Peer(fmt.Sprintf("w%d", i))
		workerNames[i] = w
		full(w, task, open)
		own := cond.EqConst{Attr: "Worker", Const: data.Value(w)}
		s.MustAddView(schema.MustView(claim, w, []data.Attr{"Task", "Worker"}, own))
		s.MustAddView(schema.MustView(work, w, []data.Attr{"Task", "Worker"}, own))
		s.MustAddView(schema.MustView(done, w, []data.Attr{"Worker"}, own))
		s.MustAddView(schema.MustView(payment, w, []data.Attr{"Task", "Worker"}, own))
	}

	rules := []*rule.Rule{
		{
			Name: "post", Peer: "requester",
			Head: []rule.Update{
				rule.Insert{Rel: "Task", Args: []query.Term{query.V("t"), query.V("d")}},
				rule.Insert{Rel: "Open", Args: []query.Term{query.V("t")}},
			},
			Body: query.Query{},
		},
		{
			Name: "accept", Peer: "platform",
			Head: []rule.Update{
				rule.Delete{Rel: "Open", Key: query.V("t")},
				rule.Insert{Rel: "Done", Args: []query.Term{query.V("t"), query.V("w")}},
			},
			Body: query.Query{
				query.Atom{Rel: "Open", Args: []query.Term{query.V("t")}},
				query.Atom{Rel: "Work", Args: []query.Term{query.V("x"), query.V("t"), query.V("w")}},
			},
		},
		{
			Name: "pay", Peer: "platform",
			Head: []rule.Update{rule.Insert{Rel: "Payment", Args: []query.Term{query.V("y"), query.V("t"), query.V("w")}}},
			Body: query.Query{query.Atom{Rel: "Done", Args: []query.Term{query.V("t"), query.V("w")}}},
		},
	}
	for i, w := range workerNames {
		rules = append(rules,
			&rule.Rule{
				Name: fmt.Sprintf("claim%d", i), Peer: w,
				Head: []rule.Update{rule.Insert{Rel: "Claim",
					Args: []query.Term{query.V("c"), query.V("t"), query.C(data.Value(w))}}},
				Body: query.Query{
					query.Atom{Rel: "Task", Args: []query.Term{query.V("t"), query.V("d")}},
					query.Atom{Rel: "Open", Args: []query.Term{query.V("t")}},
				},
			},
			&rule.Rule{
				Name: fmt.Sprintf("submit%d", i), Peer: w,
				Head: []rule.Update{rule.Insert{Rel: "Work",
					Args: []query.Term{query.V("x"), query.V("t"), query.C(data.Value(w))}}},
				Body: query.Query{query.Atom{Rel: "Claim",
					Args: []query.Term{query.V("c"), query.V("t"), query.C(data.Value(w))}}},
			},
		)
	}
	return program.New(s, rules)
}

// TransitiveClosure builds the program of Proposition 5.3: peer q derives
// in S the transitive closure of the edge relation R and transfers closed
// pairs into T; peer p sees R and T but not S. Deriving a T-fact takes a
// silent S-chain as long as the underlying R-path, so the program is not
// h-bounded for p for any h — which is exactly why no view program for p
// can exist (the insertion of a T-pair is conditioned on an R-path of
// arbitrary length).
//
//	seed  at p: +R(k, x, y)             (fresh nodes)
//	grow  at p: +R(k2, y, z)  :- R(k, x, y)   (extend a path, fresh z)
//	copy  at q: +S(k2, x, y)  :- R(k, x, y)
//	step  at q: +S(k3, x, z)  :- S(k1, x, y), R(k2, y, z), x != z
//	xfer  at q: +T(k2, x, y)  :- S(k1, x, y)
func TransitiveClosure() (*program.Program, error) {
	r := schema.MustRelation("R", "From", "To")
	sRel := schema.MustRelation("S", "From", "To")
	tRel := schema.MustRelation("T", "From", "To")
	db := schema.MustDatabase(r, sRel, tRel)
	s := schema.NewCollaborative(db)
	for _, rel := range []*schema.Relation{r, sRel, tRel} {
		s.MustAddView(schema.MustView(rel, "q", rel.Attrs[1:], nil))
	}
	s.MustAddView(schema.MustView(r, "p", r.Attrs[1:], nil))
	s.MustAddView(schema.MustView(tRel, "p", tRel.Attrs[1:], nil))

	rules := []*rule.Rule{
		{Name: "seed", Peer: "p",
			Head: []rule.Update{rule.Insert{Rel: "R", Args: []query.Term{query.V("k"), query.V("x"), query.V("y")}}},
			Body: query.Query{}},
		{Name: "grow", Peer: "p",
			Head: []rule.Update{rule.Insert{Rel: "R", Args: []query.Term{query.V("k2"), query.V("y"), query.V("z")}}},
			Body: query.Query{query.Atom{Rel: "R", Args: []query.Term{query.V("k"), query.V("x"), query.V("y")}}}},
		{Name: "copy", Peer: "q",
			Head: []rule.Update{rule.Insert{Rel: "S", Args: []query.Term{query.V("k2"), query.V("x"), query.V("y")}}},
			Body: query.Query{query.Atom{Rel: "R", Args: []query.Term{query.V("k"), query.V("x"), query.V("y")}}}},
		{Name: "step", Peer: "q",
			Head: []rule.Update{rule.Insert{Rel: "S", Args: []query.Term{query.V("k3"), query.V("x"), query.V("z")}}},
			Body: query.Query{
				query.Atom{Rel: "S", Args: []query.Term{query.V("k1"), query.V("x"), query.V("y")}},
				query.Atom{Rel: "R", Args: []query.Term{query.V("k2"), query.V("y"), query.V("z")}},
				query.Compare{Neg: true, L: query.V("x"), R: query.V("z")}}},
		{Name: "xfer", Peer: "q",
			Head: []rule.Update{rule.Insert{Rel: "T", Args: []query.Term{query.V("k2"), query.V("x"), query.V("y")}}},
			Body: query.Query{query.Atom{Rel: "S", Args: []query.Term{query.V("k1"), query.V("x"), query.V("y")}}}},
	}
	return program.New(s, rules)
}
