package workload

import (
	"testing"

	"collabwf/internal/data"
	"collabwf/internal/program"
)

func TestHiringPrograms(t *testing.T) {
	for _, p := range []*program.Program{Hiring(), HiringTransparentNoCfo()} {
		if err := p.Schema.CheckLossless(); err != nil {
			t.Fatalf("hiring schema must be lossless: %v", err)
		}
		if !p.IsNormalForm() {
			t.Fatal("hiring programs are in normal form")
		}
	}
}

func TestApprovalRunShape(t *testing.T) {
	p, r := Approval()
	if r.Len() != 4 {
		t.Fatalf("run length %d", r.Len())
	}
	// After e f g h: Ok and Approval both present.
	if !r.Current().HasKey("Ok", PropKey) || !r.Current().HasKey("Approval", PropKey) {
		t.Fatalf("final instance %s", r.Current())
	}
	// Only h is visible at the applicant.
	vis := r.VisibleEvents("applicant")
	if len(vis) != 1 || vis[0] != 3 {
		t.Fatalf("applicant sees %v", vis)
	}
	if err := p.Schema.CheckLossless(); err != nil {
		t.Fatal(err)
	}
}

func TestHittingSetRun(t *testing.T) {
	inst := HittingSetInstance{N: 3, Sets: [][]int{{0, 1}, {2}}}
	p, r, err := HittingSet(inst)
	if err != nil {
		t.Fatal(err)
	}
	// n (a) + 3 (b: two members of set 0, one of set 1) + 1 (c).
	if r.Len() != 3+3+1 {
		t.Fatalf("run length %d", r.Len())
	}
	if !r.Current().HasKey("OK", PropKey) {
		t.Fatal("OK must be derived")
	}
	if got := r.VisibleEvents("p"); len(got) != 1 || got[0] != r.Len()-1 {
		t.Fatalf("p sees %v", got)
	}
	if len(p.RulesAt("q")) != r.Len() {
		t.Fatalf("all rules belong to q")
	}
	if _, _, err := HittingSet(HittingSetInstance{N: 1, Sets: [][]int{{}}}); err == nil {
		t.Fatal("empty set must be rejected")
	}
}

func TestChainRun(t *testing.T) {
	for _, d := range []int{1, 4} {
		_, r, err := Chain(d)
		if err != nil {
			t.Fatal(err)
		}
		if r.Len() != d {
			t.Fatalf("chain(%d) run length %d", d, r.Len())
		}
		vis := r.VisibleEvents("p")
		if len(vis) != 1 || vis[0] != d-1 {
			t.Fatalf("p sees %v", vis)
		}
	}
	if _, _, err := Chain(0); err == nil {
		t.Fatal("depth 0 must be rejected")
	}
}

func TestWideRun(t *testing.T) {
	_, r, err := Wide(3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 13 {
		t.Fatalf("run length %d", r.Len())
	}
	if got := r.VisibleEvents("p"); len(got) != 1 {
		t.Fatalf("p sees %v", got)
	}
	if _, _, err := Wide(0, 1); err == nil {
		t.Fatal("bad parameters must be rejected")
	}
}

func TestCNFEvalAndSat(t *testing.T) {
	// (x0 ∨ ¬x1) ∧ (¬x0)
	f := CNF{{{Var: 0}, {Var: 1, Neg: true}}, {{Var: 0, Neg: true}}}
	if f.Eval([]bool{true, true}) {
		t.Fatal("all-true must falsify ¬x0")
	}
	if !f.Eval([]bool{false, false}) {
		t.Fatal("(f,f) satisfies")
	}
	if !f.Satisfiable(2) {
		t.Fatal("formula is satisfiable")
	}
	unsat := CNF{{{Var: 0}}, {{Var: 0, Neg: true}}}
	if unsat.Satisfiable(1) {
		t.Fatal("x ∧ ¬x is unsatisfiable")
	}
}

func TestFormulaRun(t *testing.T) {
	f := CNF{{{Var: 0, Neg: true}}, {{Var: 1}}} // ¬x0 ∧ x1: sat, false all-true
	p, r, err := Formula(2, f)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 3 {
		t.Fatalf("run length %d", r.Len())
	}
	// p sees key 0 only after the q event.
	vis := r.VisibleEvents("p")
	if len(vis) != 1 || vis[0] != 2 {
		t.Fatalf("p sees %v", vis)
	}
	if err := p.Schema.CheckLossless(); err != nil {
		t.Fatal(err)
	}
	// φ true under all-true must be rejected.
	if _, _, err := Formula(1, CNF{{{Var: 0}}}); err == nil {
		t.Fatal("all-true-satisfying formula must be rejected")
	}
	if _, _, err := Formula(1, CNF{{{Var: 7}}}); err == nil {
		t.Fatal("out-of-range literal must be rejected")
	}
}

func TestCrowdsourcingFlow(t *testing.T) {
	p, err := Crowdsourcing(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Schema.CheckLossless(); err != nil {
		t.Fatal(err)
	}
	r := program.NewRun(p)
	post := r.MustFireRule("post", nil)
	task := post.Updates[0].Key
	r.MustFireRule("claim0", map[string]data.Value{"t": task})
	r.MustFireRule("submit0", map[string]data.Value{"t": task})
	r.MustFireRule("accept", map[string]data.Value{"t": task, "w": "w0"})
	r.MustFireRule("pay", map[string]data.Value{"t": task, "w": "w0"})
	if r.Current().HasKey("Open", task) {
		t.Fatal("accept must close the task")
	}
	if r.Current().Count("Payment") != 1 {
		t.Fatal("payment missing")
	}
	// Worker w1 never sees w0's claim or payment.
	vi := r.ViewAt(r.Len()-1, "w1")
	if len(vi.Tuples("Claim")) != 0 || len(vi.Tuples("Payment")) != 0 {
		t.Fatalf("w1 sees foreign data: %s", vi)
	}
	// Worker w0 sees their payment.
	vi0 := r.ViewAt(r.Len()-1, "w0")
	if len(vi0.Tuples("Payment")) != 1 {
		t.Fatalf("w0 must see the payment: %s", vi0)
	}
}
