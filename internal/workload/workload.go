// Package workload builds the workflow programs and canonical runs used by
// the test suite, the examples and the benchmark harness. Each constructor
// corresponds to a worked example or a hardness-proof gadget of the paper:
//
//   - Hiring: Example 5.1 (hr / cfo / ceo / Sue)
//   - Approval: Example 4.2 (cto / ceo / assistant / applicant)
//   - HittingSet: the NP-hardness gadget of Theorem 3.3
//   - Formula: the coNP-hardness gadget of Theorem 3.4
//   - Chain / Wide: parameterized families for the scaling experiments
package workload

import (
	"fmt"

	"collabwf/internal/data"
	"collabwf/internal/program"
	"collabwf/internal/query"
	"collabwf/internal/rule"
	"collabwf/internal/schema"
)

// PropKey is the key value used by propositional encodings: a proposition x
// is the unary fact Rx(0).
const PropKey = data.Value("0")

// propRelation declares a unary relation encoding a proposition.
func propRelation(name string) *schema.Relation {
	return schema.MustRelation(name)
}

// propInsert builds the head update +R@q(0).
func propInsert(rel string) rule.Update {
	return rule.Insert{Rel: rel, Args: []query.Term{query.C(PropKey)}}
}

// propDelete builds the head update −Key_R@q(0).
func propDelete(rel string) rule.Update {
	return rule.Delete{Rel: rel, Key: query.C(PropKey)}
}

// propAtom builds the body literal R@q(0).
func propAtom(rel string) query.Literal {
	return query.Atom{Rel: rel, Args: []query.Term{query.C(PropKey)}}
}

// propNegKey builds the body literal ¬Key_R@q(0).
func propNegKey(rel string) query.Literal {
	return query.KeyAtom{Neg: true, Rel: rel, Arg: query.C(PropKey)}
}

// Hiring returns the program of Example 5.1. Peers hr, cfo and ceo see all
// four unary relations; Sue sees only Cleared and Hire. Unlike the paper's
// informal rendering, the cfo and ceo rules carry the candidate through
// their bodies (head-only variables must be globally fresh in runs, so a
// candidate is introduced exactly once, by "clear").
//
//	clear    at hr:  +Cleared(x)  :-                          (x fresh)
//	cfo_ok   at cfo: +CfoOK(x)    :- Cleared(x)
//	approve  at ceo: +Approved(x) :- Cleared(x), CfoOK(x)
//	hire     at hr:  +Hire(x)     :- Approved(x)
//
// The program is not transparent for Sue: cfoOK is invisible to her yet
// gates the Hire transition she observes (Example 5.7).
func Hiring() *program.Program {
	cleared := propRelation("Cleared")
	cfoOK := propRelation("CfoOK")
	approved := propRelation("Approved")
	hire := propRelation("Hire")
	db := schema.MustDatabase(cleared, cfoOK, approved, hire)
	s := schema.NewCollaborative(db)
	for _, p := range []schema.Peer{"hr", "cfo", "ceo"} {
		for _, r := range []*schema.Relation{cleared, cfoOK, approved, hire} {
			s.MustAddView(schema.MustView(r, p, nil, nil))
		}
	}
	s.MustAddView(schema.MustView(cleared, "sue", nil, nil))
	s.MustAddView(schema.MustView(hire, "sue", nil, nil))

	rules := []*rule.Rule{
		{
			Name: "clear", Peer: "hr",
			Head: []rule.Update{rule.Insert{Rel: "Cleared", Args: []query.Term{query.V("x")}}},
			Body: query.Query{},
		},
		{
			Name: "cfo_ok", Peer: "cfo",
			Head: []rule.Update{rule.Insert{Rel: "CfoOK", Args: []query.Term{query.V("x")}}},
			Body: query.Query{query.Atom{Rel: "Cleared", Args: []query.Term{query.V("x")}}},
		},
		{
			Name: "approve", Peer: "ceo",
			Head: []rule.Update{rule.Insert{Rel: "Approved", Args: []query.Term{query.V("x")}}},
			Body: query.Query{
				query.Atom{Rel: "Cleared", Args: []query.Term{query.V("x")}},
				query.Atom{Rel: "CfoOK", Args: []query.Term{query.V("x")}},
			},
		},
		{
			Name: "hire", Peer: "hr",
			Head: []rule.Update{rule.Insert{Rel: "Hire", Args: []query.Term{query.V("x")}}},
			Body: query.Query{query.Atom{Rel: "Approved", Args: []query.Term{query.V("x")}}},
		},
	}
	return program.MustNew(s, rules)
}

// HiringTransparentNoCfo returns the first variant of Example 5.7: the
// hiring program with the cfoOK relation removed. The candidate still flows
// hr → ceo → hr, and everything Sue's transitions depend on is in relations
// she sees — yet the program is still not transparent for Sue, because a
// pre-existing invisible Approved fact can enable a Hire on one Sue-fresh
// instance but not on another with the same Sue-view.
func HiringTransparentNoCfo() *program.Program {
	cleared := propRelation("Cleared")
	approved := propRelation("Approved")
	hire := propRelation("Hire")
	db := schema.MustDatabase(cleared, approved, hire)
	s := schema.NewCollaborative(db)
	for _, p := range []schema.Peer{"hr", "ceo"} {
		for _, r := range []*schema.Relation{cleared, approved, hire} {
			s.MustAddView(schema.MustView(r, p, nil, nil))
		}
	}
	s.MustAddView(schema.MustView(cleared, "sue", nil, nil))
	s.MustAddView(schema.MustView(hire, "sue", nil, nil))

	rules := []*rule.Rule{
		{
			Name: "clear", Peer: "hr",
			Head: []rule.Update{rule.Insert{Rel: "Cleared", Args: []query.Term{query.V("x")}}},
			Body: query.Query{},
		},
		{
			Name: "approve", Peer: "ceo",
			Head: []rule.Update{rule.Insert{Rel: "Approved", Args: []query.Term{query.V("x")}}},
			Body: query.Query{query.Atom{Rel: "Cleared", Args: []query.Term{query.V("x")}}},
		},
		{
			Name: "hire", Peer: "hr",
			Head: []rule.Update{rule.Insert{Rel: "Hire", Args: []query.Term{query.V("x")}}},
			Body: query.Query{query.Atom{Rel: "Approved", Args: []query.Term{query.V("x")}}},
		},
	}
	return program.MustNew(s, rules)
}

// Approval returns the program and run of Example 4.2: peers cto, ceo,
// assistant and applicant with propositions ok and approval. The run is
//
//	e: +ok@cto :-      f: −ok@cto :-      g: +ok@ceo :-
//	h: +approval@assistant :- ok@assistant
//
// The subrun e·h is a (misleading) scenario for the applicant; the unique
// minimal applicant-faithful scenario is g·h.
func Approval() (*program.Program, *program.Run) {
	ok := propRelation("Ok")
	approval := propRelation("Approval")
	db := schema.MustDatabase(ok, approval)
	s := schema.NewCollaborative(db)
	for _, p := range []schema.Peer{"cto", "ceo", "assistant"} {
		s.MustAddView(schema.MustView(ok, p, nil, nil))
		s.MustAddView(schema.MustView(approval, p, nil, nil))
	}
	s.MustAddView(schema.MustView(approval, "applicant", nil, nil))

	rules := []*rule.Rule{
		{Name: "e", Peer: "cto", Head: []rule.Update{propInsert("Ok")}, Body: query.Query{}},
		{Name: "f", Peer: "cto", Head: []rule.Update{propDelete("Ok")}, Body: query.Query{propAtom("Ok")}},
		{Name: "g", Peer: "ceo", Head: []rule.Update{propInsert("Ok")}, Body: query.Query{propNegKey("Ok")}},
		{Name: "h", Peer: "assistant", Head: []rule.Update{propInsert("Approval")}, Body: query.Query{propAtom("Ok")}},
	}
	p := program.MustNew(s, rules)
	r := program.NewRun(p)
	for _, name := range []string{"e", "f", "g", "h"} {
		r.MustFireRule(name, nil)
	}
	return p, r
}

// HittingSetInstance is an instance of the hitting set problem: sets are
// subsets of {0, ..., N-1} given by element indices.
type HittingSetInstance struct {
	N    int
	Sets [][]int
}

// HittingSet returns the program of the Theorem 3.3 reduction and its
// canonical run ρ: peer q sees all propositions V_i, C_j and OK; peer p sees
// only OK. The run fires all (a)-rules, then one (b)-rule for every (i, j)
// with v_i ∈ c_j, then the (c)-rule. A scenario for p of length ≤ M+k+1
// exists iff the instance has a hitting set of size ≤ M.
func HittingSet(inst HittingSetInstance) (*program.Program, *program.Run, error) {
	var rels []*schema.Relation
	for i := 0; i < inst.N; i++ {
		rels = append(rels, propRelation(fmt.Sprintf("V%d", i)))
	}
	for j := range inst.Sets {
		rels = append(rels, propRelation(fmt.Sprintf("C%d", j)))
	}
	okRel := propRelation("OK")
	rels = append(rels, okRel)
	db := schema.MustDatabase(rels...)
	s := schema.NewCollaborative(db)
	for _, r := range rels {
		s.MustAddView(schema.MustView(r, "q", nil, nil))
	}
	s.MustAddView(schema.MustView(okRel, "p", nil, nil))

	var rules []*rule.Rule
	for i := 0; i < inst.N; i++ {
		rules = append(rules, &rule.Rule{
			Name: fmt.Sprintf("a%d", i), Peer: "q",
			Head: []rule.Update{propInsert(fmt.Sprintf("V%d", i))},
			Body: query.Query{},
		})
	}
	for j, set := range inst.Sets {
		for _, i := range set {
			rules = append(rules, &rule.Rule{
				Name: fmt.Sprintf("b%d_%d", j, i), Peer: "q",
				Head: []rule.Update{propInsert(fmt.Sprintf("C%d", j))},
				Body: query.Query{propAtom(fmt.Sprintf("V%d", i))},
			})
		}
	}
	okBody := make(query.Query, 0, len(inst.Sets))
	for j := range inst.Sets {
		okBody = append(okBody, propAtom(fmt.Sprintf("C%d", j)))
	}
	rules = append(rules, &rule.Rule{Name: "c", Peer: "q",
		Head: []rule.Update{propInsert("OK")}, Body: okBody})

	p, err := program.New(s, rules)
	if err != nil {
		return nil, nil, err
	}
	r := program.NewRun(p)
	for i := 0; i < inst.N; i++ {
		if _, err := r.FireRule(fmt.Sprintf("a%d", i), nil); err != nil {
			return nil, nil, err
		}
	}
	for j, set := range inst.Sets {
		if len(set) == 0 {
			return nil, nil, fmt.Errorf("workload: set %d is empty, OK is unreachable", j)
		}
		for _, i := range set {
			if _, err := r.FireRule(fmt.Sprintf("b%d_%d", j, i), nil); err != nil {
				return nil, nil, err
			}
		}
	}
	if _, err := r.FireRule("c", nil); err != nil {
		return nil, nil, err
	}
	return p, r, nil
}

// Chain returns a propositional chain program of depth d: peer q derives
// A1, then A_{i+1} from A_i; peer p sees only A_d. The canonical run fires
// the whole chain. The minimum p-faithful subrun ending in the visible
// event has length exactly d, so the program is d-bounded but not
// (d−1)-bounded for p.
func Chain(d int) (*program.Program, *program.Run, error) {
	if d < 1 {
		return nil, nil, fmt.Errorf("workload: chain depth must be ≥ 1")
	}
	rels := make([]*schema.Relation, d)
	for i := range rels {
		rels[i] = propRelation(fmt.Sprintf("A%d", i+1))
	}
	db := schema.MustDatabase(rels...)
	s := schema.NewCollaborative(db)
	for _, r := range rels {
		s.MustAddView(schema.MustView(r, "q", nil, nil))
	}
	s.MustAddView(schema.MustView(rels[d-1], "p", nil, nil))

	rules := []*rule.Rule{{
		Name: "step1", Peer: "q",
		Head: []rule.Update{propInsert("A1")},
		Body: query.Query{},
	}}
	for i := 2; i <= d; i++ {
		rules = append(rules, &rule.Rule{
			Name: fmt.Sprintf("step%d", i), Peer: "q",
			Head: []rule.Update{propInsert(fmt.Sprintf("A%d", i))},
			Body: query.Query{propAtom(fmt.Sprintf("A%d", i-1))},
		})
	}
	p, err := program.New(s, rules)
	if err != nil {
		return nil, nil, err
	}
	r := program.NewRun(p)
	for i := 1; i <= d; i++ {
		if _, err := r.FireRule(fmt.Sprintf("step%d", i), nil); err != nil {
			return nil, nil, err
		}
	}
	return p, r, nil
}

// Wide returns a run interleaving a relevant chain of depth `depth` (peer p
// sees the chain's last proposition) with `noise` irrelevant events on
// relations p never sees. It exercises explanation compression: the minimal
// p-faithful scenario has size depth, independent of noise.
func Wide(depth, noise int) (*program.Program, *program.Run, error) {
	if depth < 1 || noise < 0 {
		return nil, nil, fmt.Errorf("workload: bad Wide parameters")
	}
	var rels []*schema.Relation
	for i := 1; i <= depth; i++ {
		rels = append(rels, propRelation(fmt.Sprintf("A%d", i)))
	}
	for i := 0; i < noise; i++ {
		rels = append(rels, propRelation(fmt.Sprintf("N%d", i)))
	}
	db := schema.MustDatabase(rels...)
	s := schema.NewCollaborative(db)
	for _, r := range rels {
		s.MustAddView(schema.MustView(r, "q", nil, nil))
	}
	s.MustAddView(schema.MustView(db.Relation(fmt.Sprintf("A%d", depth)), "p", nil, nil))

	rules := []*rule.Rule{{
		Name: "step1", Peer: "q",
		Head: []rule.Update{propInsert("A1")},
		Body: query.Query{},
	}}
	for i := 2; i <= depth; i++ {
		rules = append(rules, &rule.Rule{
			Name: fmt.Sprintf("step%d", i), Peer: "q",
			Head: []rule.Update{propInsert(fmt.Sprintf("A%d", i))},
			Body: query.Query{propAtom(fmt.Sprintf("A%d", i-1))},
		})
	}
	for i := 0; i < noise; i++ {
		rules = append(rules, &rule.Rule{
			Name: fmt.Sprintf("noise%d", i), Peer: "q",
			Head: []rule.Update{propInsert(fmt.Sprintf("N%d", i))},
			Body: query.Query{},
		})
	}
	p, err := program.New(s, rules)
	if err != nil {
		return nil, nil, err
	}
	r := program.NewRun(p)
	// Interleave: noise events between chain steps, round-robin.
	ni := 0
	fireNoise := func(k int) error {
		for j := 0; j < k && ni < noise; j++ {
			if _, err := r.FireRule(fmt.Sprintf("noise%d", ni), nil); err != nil {
				return err
			}
			ni++
		}
		return nil
	}
	per := noise / (depth + 1)
	for i := 1; i <= depth; i++ {
		if err := fireNoise(per); err != nil {
			return nil, nil, err
		}
		if _, err := r.FireRule(fmt.Sprintf("step%d", i), nil); err != nil {
			return nil, nil, err
		}
	}
	if err := fireNoise(noise); err != nil { // drain the rest
		return nil, nil, err
	}
	return p, r, nil
}
