package collabwf_test

import (
	"strings"
	"testing"

	"collabwf"
)

const reviewSpec = `
workflow Review
relation Doc(K, Author, Status)
peer writer { view Doc(K, Author, Status) }
peer editor { view Doc(K, Author, Status) }
peer reader { view Doc(K, Author) where Status = "pub" }
rule draft at writer:   +Doc(d, a, null) :- true
rule publish at editor: +Doc(d, x, "pub") :- Doc(d, x, null)
rule retract at editor: -Doc(d) :- Doc(d, x, "pub")
`

func reviewRun(t *testing.T) (*collabwf.Program, *collabwf.Run, collabwf.Value) {
	t.Helper()
	spec, err := collabwf.Parse(reviewSpec)
	if err != nil {
		t.Fatal(err)
	}
	run := collabwf.NewRun(spec.Program)
	d, err := run.FireRule("draft", map[string]collabwf.Value{"a": "alice"})
	if err != nil {
		t.Fatal(err)
	}
	doc := d.Updates[0].Key
	if _, err := run.FireRule("publish", map[string]collabwf.Value{"d": doc, "x": "alice"}); err != nil {
		t.Fatal(err)
	}
	return spec.Program, run, doc
}

func TestFacadeParseRunExplain(t *testing.T) {
	_, run, _ := reviewRun(t)
	ex := collabwf.NewExplainer(run, "reader")
	rep := ex.Report()
	if len(rep.Transitions) != 1 {
		t.Fatalf("transitions=%d", len(rep.Transitions))
	}
	if !strings.Contains(rep.String(), "because #0 draft") {
		t.Fatalf("report:\n%s", rep)
	}
	seq, sub, err := collabwf.MinimalFaithfulScenario(run, "reader")
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != 2 || sub.Len() != 2 {
		t.Fatalf("scenario=%v", seq)
	}
	if !collabwf.IsScenario(run, "reader", seq) {
		t.Fatal("minimal faithful scenario must be a scenario")
	}
}

func TestFacadeScenarioSearch(t *testing.T) {
	_, run, _ := reviewRun(t)
	min, err := collabwf.MinimumScenario(run, "reader", collabwf.ScenarioOptions{})
	if err != nil {
		t.Fatal(err)
	}
	greedy := collabwf.GreedyScenario(run, "reader")
	if len(min) > len(greedy) {
		t.Fatalf("minimum %v longer than greedy %v", min, greedy)
	}
}

func TestFacadeStaticPipeline(t *testing.T) {
	prog, _, _ := reviewRun(t)
	opts := collabwf.SearchOptions{PoolFresh: 2, MaxTuplesPerRelation: 1}
	if v, err := collabwf.CheckBounded(prog, "reader", 2, opts); err != nil || v != nil {
		t.Fatalf("review is 2-bounded for reader: %v %v", v, err)
	}
	// Reader transparency: publish depends only on data the reader's view
	// determines? The draft's Status=⊥ is hidden, so two fresh instances
	// can disagree — expect a verdict either way without error; just
	// exercise the call.
	if _, err := collabwf.CheckTransparent(prog, "reader", 2, opts); err != nil {
		t.Fatal(err)
	}
	res, err := collabwf.SynthesizeViewProgram(prog, "reader", 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.OmegaRules) == 0 {
		t.Fatal("no ω-rules for reader")
	}
	text := collabwf.PrintProgram("ReaderView", res.Program)
	if _, err := collabwf.Parse(text); err != nil {
		t.Fatalf("synthesized program must reparse: %v\n%s", err, text)
	}
}

func TestFacadeDesignPipeline(t *testing.T) {
	// Guideline (C1) rejects the review schema for every peer: the
	// reader's selective Doc view means Doc is never "seen fully by all
	// its viewers".
	prog, _, _ := reviewRun(t)
	if _, err := collabwf.AcyclicBound(prog, "reader"); err == nil {
		t.Fatal("AcyclicBound must reject the reader's partial view (C1)")
	}
	if _, err := collabwf.Staged(prog, "editor"); err == nil {
		t.Fatal("staging must reject the schema (C1: reader sees Doc partially)")
	}

	// A fully-shared two-step pipeline satisfies (C1) and supports the
	// whole design toolchain.
	spec, err := collabwf.Parse(`
workflow Pipeline
relation A(K)
relation B(K)
peer boss { view A(K)
            view B(K) }
peer worker { view A(K)
              view B(K) }
rule mkA at worker: +A(x) :- true
rule mkB at worker: +B(x) :- A(x)
`)
	if err != nil {
		t.Fatal(err)
	}
	bound, err := collabwf.AcyclicBound(spec.Program, "boss")
	if err != nil {
		t.Fatal(err)
	}
	if bound != 9 { // (a·b+1)^d = (2·1+1)^2
		t.Fatalf("bound=%d", bound)
	}
	staged, err := collabwf.Staged(spec.Program, "boss")
	if err != nil {
		t.Fatal(err)
	}
	run := collabwf.NewRun(staged)
	if _, err := run.FireRule("stage_refresh_worker", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := run.FireRule("mkA", nil); err != nil {
		t.Fatal(err)
	}
	mon := collabwf.NewMonitor(run, "boss", 2)
	if !mon.Transparent() {
		t.Fatalf("violations: %v", mon.Violations())
	}
}

func TestFacadeRandomRunDeterminism(t *testing.T) {
	prog, _, _ := reviewRun(t)
	a, err := collabwf.RandomRun(prog, 10, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := collabwf.RandomRun(prog, 10, 99)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatal("random runs with the same seed must coincide")
	}
}

func TestFacadeConstants(t *testing.T) {
	if collabwf.Null.String() != "⊥" || collabwf.World != "ω" {
		t.Fatal("facade constants wrong")
	}
}
