// Package collabwf is a Go implementation of the data-driven collaborative
// workflow model and the explanation machinery of
//
//	Serge Abiteboul, Pierre Bourhis, Victor Vianu:
//	"Explanations and Transparency in Collaborative Workflows", PODS 2018.
//
// In the model, peers share a global relational database through
// selection-projection views and update it with datalog-style rules; a run
// is a sequence of rule instantiations (events). The library provides:
//
//   - the workflow substrate: schemas with per-peer views and the
//     losslessness check, FCQ¬ rule bodies, the chase-based update
//     semantics, runs with visibility tracking (Section 2);
//   - runtime explanations: scenarios, minimum-scenario search, and the
//     unique minimal faithful scenario of a run for a peer, maintained
//     incrementally (Sections 3–4);
//   - static explanations: decision procedures for h-boundedness and
//     transparency, and synthesis of view programs whose rules carry
//     provenance (Section 5);
//   - a design methodology: stage-discipline transformation, p-graph
//     acyclicity bounds, a runtime transparency monitor, and the
//     transparency-form rewriting (Section 6);
//   - a concrete syntax for workflow specifications (internal/parse),
//     JSON run traces (internal/trace), causal provenance graphs
//     (internal/prov), the master-server coordinator of the paper's
//     conclusion (internal/server), and command-line tools (cmd/wfrun,
//     cmd/wfexplain, cmd/wfsynth, cmd/wfserve, cmd/wfbench).
//
// This package is a facade re-exporting the main types and entry points;
// the implementation lives under internal/.
package collabwf

import (
	"collabwf/internal/cond"
	"collabwf/internal/core"
	"collabwf/internal/data"
	"collabwf/internal/design"
	"collabwf/internal/engine"
	"collabwf/internal/faithful"
	"collabwf/internal/parse"
	"collabwf/internal/program"
	"collabwf/internal/prov"
	"collabwf/internal/query"
	"collabwf/internal/rule"
	"collabwf/internal/scenario"
	"collabwf/internal/schema"
	"collabwf/internal/server"
	"collabwf/internal/synth"
	"collabwf/internal/trace"
	"collabwf/internal/transparency"
	"context"
)

// Core model types (Section 2).
type (
	// Value is an element of the data domain dom.
	Value = data.Value
	// Attr is an attribute name; every relation's key attribute is K.
	Attr = data.Attr
	// Tuple is a positional tuple over a relation schema.
	Tuple = data.Tuple
	// Peer identifies a workflow participant.
	Peer = schema.Peer
	// Relation is a relation schema with the common single-attribute key.
	Relation = schema.Relation
	// Database is a global database schema.
	Database = schema.Database
	// View is a selection-projection view R@p of a relation at a peer.
	View = schema.View
	// Schema is a collaborative schema: a database plus peer views.
	Schema = schema.Collaborative
	// Instance is a valid instance of a database schema.
	Instance = schema.Instance
	// ViewInstance is a peer's view I@p of a global instance.
	ViewInstance = schema.ViewInstance
	// Condition is a Boolean combination of elementary conditions, used
	// as view selections.
	Condition = cond.Condition
	// Rule is a workflow update rule at a peer.
	Rule = rule.Rule
	// Query is an FCQ¬ rule body.
	Query = query.Query
	// Program is a workflow specification: schema plus rules.
	Program = program.Program
	// Run is a run of a program with per-event effect recording.
	Run = program.Run
	// Event is a rule instantiation.
	Event = program.Event
	// Spec is a parsed textual workflow specification.
	Spec = parse.Spec
)

// Explanation types (Sections 3–5).
type (
	// Explainer maintains runtime explanations of a run for one peer.
	Explainer = core.Explainer
	// ExplanationReport is a structured runtime explanation.
	ExplanationReport = core.Report
	// ViewProgram is a synthesized view program with provenance-carrying
	// ω-rules.
	ViewProgram = synth.Result
	// SearchOptions bounds the static decision procedures.
	SearchOptions = transparency.Options
	// ScenarioOptions bounds the NP-hard scenario searches.
	ScenarioOptions = scenario.Options
	// Monitor is the runtime transparency/boundedness monitor of the
	// design methodology.
	Monitor = design.Monitor
	// Coordinator is the master server of the paper's conclusion:
	// serialized submissions, per-peer observation and explanation, and
	// guarded transparency enforcement.
	Coordinator = server.Coordinator
	// Trace is a serialized, replayable run.
	Trace = trace.Trace
	// ProvGraph is the causal graph over a run's events derived from
	// faithfulness; it supports provenance queries and DOT export.
	ProvGraph = prov.Graph
)

// Null is the distinguished undefined value ⊥.
const Null = data.Null

// World is the fictitious peer ω used by synthesized view programs.
const World = schema.World

// Parse parses a textual workflow specification into a validated program.
func Parse(src string) (*Spec, error) { return parse.Parse(src) }

// PrintProgram renders a program in the surface syntax accepted by Parse.
func PrintProgram(name string, p *Program) string { return parse.Print(name, p) }

// NewRun starts a run of the program from the empty instance.
func NewRun(p *Program) *Run { return program.NewRun(p) }

// NewRunFrom starts a run from an arbitrary initial instance.
func NewRunFrom(p *Program, initial *Instance) *Run { return program.NewRunFrom(p, initial) }

// Play executes a deterministic script of rule firings.
func Play(p *Program, s engine.Script) (*Run, error) { return engine.Play(p, s) }

// RandomRun drives the program with a seeded random scheduler.
func RandomRun(p *Program, steps int, seed int64) (*Run, error) {
	return engine.RandomRun(p, steps, seed, 0)
}

// NewExplainer attaches a runtime explainer for the peer to the run
// (Theorem 4.7: it maintains the unique minimal p-faithful scenario,
// incrementally).
func NewExplainer(r *Run, peer Peer) *Explainer { return core.NewExplainer(r, peer) }

// MinimalFaithfulScenario computes the unique minimal p-faithful scenario
// of a run from scratch, returning the selected event indices and the
// replayed subrun.
func MinimalFaithfulScenario(r *Run, peer Peer) ([]int, *Run, error) {
	a := faithful.NewAnalysis(r)
	seq, sub, err := faithful.Minimal(a, peer)
	if err != nil {
		return nil, nil, err
	}
	return seq.Sorted(), sub, nil
}

// IsScenario reports whether the selected event subsequence is a scenario
// of the run at the peer (Definition 3.2).
func IsScenario(r *Run, peer Peer, indices []int) bool {
	return scenario.IsScenario(r, peer, indices)
}

// MinimumScenario searches exhaustively for a minimum-length scenario
// (NP-complete, Theorem 3.3; bounded by opts).
func MinimumScenario(r *Run, peer Peer, opts ScenarioOptions) ([]int, error) {
	return scenario.Minimum(r, peer, opts)
}

// MinimumScenarioCtx is MinimumScenario with a cancellable context; the
// subset scan fans out on opts.Parallelism workers.
func MinimumScenarioCtx(ctx context.Context, r *Run, peer Peer, opts ScenarioOptions) ([]int, error) {
	return scenario.MinimumCtx(ctx, r, peer, opts)
}

// GreedyScenario computes a 1-minimal scenario in polynomial time.
func GreedyScenario(r *Run, peer Peer) []int { return scenario.Greedy(r, peer) }

// CheckBounded decides h-boundedness of the program for the peer
// (Theorem 5.10). A nil violation means h-bounded relative to the caps.
func CheckBounded(p *Program, peer Peer, h int, opts SearchOptions) (*transparency.BoundViolation, error) {
	return transparency.CheckBounded(p, peer, h, opts)
}

// CheckBoundedCtx is CheckBounded with a cancellable context; the search
// fans out on opts.Parallelism workers.
func CheckBoundedCtx(ctx context.Context, p *Program, peer Peer, h int, opts SearchOptions) (*transparency.BoundViolation, error) {
	return transparency.CheckBoundedCtx(ctx, p, peer, h, opts)
}

// CheckTransparent decides transparency of an h-bounded program for the
// peer (Theorem 5.11).
func CheckTransparent(p *Program, peer Peer, h int, opts SearchOptions) (*transparency.TransparencyViolation, error) {
	return transparency.CheckTransparent(p, peer, h, opts)
}

// CheckTransparentCtx is CheckTransparent with a cancellable context; the
// search fans out on opts.Parallelism workers.
func CheckTransparentCtx(ctx context.Context, p *Program, peer Peer, h int, opts SearchOptions) (*transparency.TransparencyViolation, error) {
	return transparency.CheckTransparentCtx(ctx, p, peer, h, opts)
}

// SynthesizeViewProgram constructs the view program P@p of a transparent,
// h-bounded program (Theorem 5.13); ω-rule bodies carry the provenance of
// the transitions they describe.
func SynthesizeViewProgram(p *Program, peer Peer, h int, opts SearchOptions) (*ViewProgram, error) {
	return synth.Synthesize(p, peer, h, opts)
}

// Staged rewrites a program to follow the stage discipline of the design
// guidelines, making it transparent for the peer by construction
// (Theorem 6.2).
func Staged(p *Program, peer Peer) (*Program, error) { return design.Staged(p, peer) }

// NewMonitor attaches a runtime transparency and h-boundedness monitor for
// the peer to a run (Definition 6.4, Remark 6.9).
func NewMonitor(r *Run, peer Peer, h int) *Monitor { return design.NewMonitor(r, peer, h) }

// AcyclicBound computes the h-boundedness guarantee (ab+1)^d of
// Theorem 6.3 for p-acyclic linear-head programs.
func AcyclicBound(p *Program, peer Peer) (int, error) { return design.AcyclicBound(p, peer) }

// NewCoordinator starts a master server for the program (see cmd/wfserve
// for the HTTP façade).
func NewCoordinator(name string, p *Program) *Coordinator { return server.New(name, p) }

// RecordTrace serializes a run for storage or hand-off; Trace.Replay
// reconstructs and re-validates it.
func RecordTrace(name string, r *Run) *Trace { return trace.FromRun(name, r) }

// BuildProvenance computes the causal graph of a run for a peer: edges
// follow the direct requirements of boundary and modification faithfulness,
// so the nodes reachable from an event are exactly its minimal faithful
// explanation.
func BuildProvenance(r *Run, peer Peer) *ProvGraph { return prov.Build(r, peer) }
