package collabwf_test

import (
	"fmt"

	"collabwf"
)

// A workflow is declared in the textual syntax, driven by firing rules, and
// explained from a peer's perspective.
func Example() {
	spec, err := collabwf.Parse(`
workflow Review
relation Doc(K, Author, Status)
peer writer { view Doc(K, Author, Status) }
peer editor { view Doc(K, Author, Status) }
peer reader { view Doc(K, Author) where Status = "pub" }
rule draft at writer:   +Doc(d, a, null) :- true
rule publish at editor: +Doc(d, x, "pub") :- Doc(d, x, null)
`)
	if err != nil {
		panic(err)
	}
	run := collabwf.NewRun(spec.Program)
	d, _ := run.FireRule("draft", map[string]collabwf.Value{"a": "alice"})
	run.FireRule("publish", map[string]collabwf.Value{"d": d.Updates[0].Key, "x": "alice"})

	fmt.Print(collabwf.NewExplainer(run, "reader").Report())
	// Output:
	// explanation for peer reader
	// observed #1 publish by ω (editor): set Doc[ν1] Status=pub
	//     because #0 draft by writer (invisible): created Doc(ν1, alice, ⊥)
}

// The minimal faithful scenario is the unique smallest faithful explanation
// of everything a peer observed (Theorem 4.7).
func ExampleMinimalFaithfulScenario() {
	spec, err := collabwf.Parse(`
workflow W
relation A(K)
relation B(K)
relation Noise(K)
peer q { view A(K)
         view B(K)
         view Noise(K) }
peer p { view B(K) }
rule mkA at q:    +A(x) :- true
rule mkB at q:    +B(x) :- A(x)
rule gossip at q: +Noise(x) :- true
`)
	if err != nil {
		panic(err)
	}
	run := collabwf.NewRun(spec.Program)
	a, _ := run.FireRule("mkA", nil)
	run.FireRule("gossip", nil) // irrelevant to p
	run.FireRule("gossip", nil) // irrelevant to p
	run.FireRule("mkB", map[string]collabwf.Value{"x": a.Updates[0].Key})

	indices, sub, err := collabwf.MinimalFaithfulScenario(run, "p")
	if err != nil {
		panic(err)
	}
	fmt.Println("events kept:", indices, "of", run.Len())
	fmt.Println("replayed length:", sub.Len())
	// Output:
	// events kept: [0 3] of 4
	// replayed length: 2
}

// The static analyses decide h-boundedness and transparency, the
// prerequisites for view-program synthesis (Section 5).
func ExampleCheckBounded() {
	spec, err := collabwf.Parse(`
workflow Chain
relation A1(K)
relation A2(K)
peer q { view A1(K)
         view A2(K) }
peer p { view A2(K) }
rule s1 at q: +A1("0") :- not key A1("0")
rule s2 at q: +A2("0") :- A1("0"), not key A2("0")
`)
	if err != nil {
		panic(err)
	}
	opts := collabwf.SearchOptions{PoolFresh: 1, MaxTuplesPerRelation: 1}
	for _, h := range []int{1, 2} {
		v, err := collabwf.CheckBounded(spec.Program, "p", h, opts)
		if err != nil {
			panic(err)
		}
		fmt.Printf("h=%d bounded=%v\n", h, v == nil)
	}
	// Output:
	// h=1 bounded=false
	// h=2 bounded=true
}
