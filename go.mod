module collabwf

go 1.22
