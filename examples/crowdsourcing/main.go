// Crowdsourcing: a task marketplace with a requester, a platform and
// several workers — the kind of multi-party application the paper's
// introduction motivates. Workers see the task board and only their own
// claims, work and payments. The example streams events into a run while a
// worker's explainer follows along incrementally: when a payment appears in
// the worker's view, the explanation names the exact chain of events —
// including invisible platform decisions — that produced it.
//
//	go run ./examples/crowdsourcing
package main

import (
	"fmt"
	"log"

	"collabwf"
	"collabwf/internal/workload"
)

func main() {
	prog, err := workload.Crowdsourcing(3)
	if err != nil {
		log.Fatal(err)
	}
	run := collabwf.NewRun(prog)

	// Worker w0 watches the run through an incremental explainer.
	w0 := collabwf.NewExplainer(run, "w0")

	fire := func(rule string, bind map[string]collabwf.Value) *collabwf.Event {
		e, err := run.FireRule(rule, bind)
		if err != nil {
			log.Fatalf("%s: %v", rule, err)
		}
		w0.Sync()
		return e
	}

	// The requester posts two tasks.
	t1 := fire("post", nil).Updates[0].Key
	t2 := fire("post", nil).Updates[0].Key

	// Workers race: w0 and w1 claim task 1, w2 claims task 2.
	fire("claim0", map[string]collabwf.Value{"t": t1})
	fire("claim1", map[string]collabwf.Value{"t": t1})
	fire("claim2", map[string]collabwf.Value{"t": t2})

	// w0 and w1 both submit; the platform accepts w0's work and pays.
	fire("submit0", map[string]collabwf.Value{"t": t1})
	fire("submit1", map[string]collabwf.Value{"t": t1})
	fire("accept", map[string]collabwf.Value{"t": t1, "w": "w0"})
	fire("pay", map[string]collabwf.Value{"t": t1, "w": "w0"})

	fmt.Printf("run: %d events; w0 observed %d transitions\n\n",
		run.Len(), len(run.VisibleEvents("w0")))

	// What w0 sees at the end: the board, their claim/work, their payment.
	fmt.Println("w0's final view:", run.ViewAt(run.Len()-1, "w0"))

	// The explanation of w0's observations. Note what it includes and
	// excludes: the platform's accept (invisible to w0 except through the
	// Open-marker deletion) is pinned as the cause of the payment, while
	// w1's and w2's parallel activity is filtered out entirely.
	fmt.Println()
	fmt.Print(w0.Report())

	minSeq := w0.MinimalScenario()
	fmt.Printf("\nminimal faithful scenario: %d of %d events (%v)\n", len(minSeq), run.Len(), minSeq)

	// Contrast with w1, whose submission was never accepted.
	w1 := collabwf.NewExplainer(run, "w1")
	fmt.Println()
	fmt.Print(w1.Report())

	// Post another task so the board stays busy, and show the explainer
	// keeps up incrementally.
	fire("post", nil)
	fire("claim0", map[string]collabwf.Value{"t": t2})
	fmt.Printf("\nafter more activity: w0's scenario now has %d events\n", len(w0.MinimalScenario()))
}
