// Hiring: the paper's running example (Examples 5.1 and 5.7). Sue, a job
// candidate, sees only the Cleared and Hire relations while hr, cfo and ceo
// collaborate on her case. The example shows the full explanation
// toolchain:
//
//  1. a runtime explanation of what Sue observed (minimal faithful
//     scenario),
//
//  2. the transparency check failing with a concrete counterexample,
//
//  3. the stage-discipline rewriting that makes the workflow transparent
//     for Sue by design (Theorem 6.2),
//
//  4. the synthesized view program for Sue, whose rules carry provenance
//     (Theorem 5.13).
//
//     go run ./examples/hiring
package main

import (
	"fmt"
	"log"

	"collabwf"
	"collabwf/internal/workload"
)

func main() {
	prog := workload.Hiring()

	// 1. Drive the canonical run and explain it for Sue.
	run := collabwf.NewRun(prog)
	clear, err := run.FireRule("clear", nil) // the candidate id is invented fresh
	if err != nil {
		log.Fatal(err)
	}
	sue := clear.Updates[0].Key
	for _, step := range []string{"cfo_ok", "approve", "hire"} {
		if _, err := run.FireRule(step, map[string]collabwf.Value{"x": sue}); err != nil {
			log.Fatal(err)
		}
	}
	ex := collabwf.NewExplainer(run, "sue")
	fmt.Println("=== runtime explanation for sue ===")
	fmt.Print(ex.Report())

	// 2. Static analysis: the program is 3-bounded but not transparent for
	// Sue — the cfo's invisible approval gates what she sees.
	opts := collabwf.SearchOptions{PoolFresh: 2, MaxTuplesPerRelation: 1}
	if v, err := collabwf.CheckBounded(prog, "sue", 3, opts); err != nil {
		log.Fatal(err)
	} else if v == nil {
		fmt.Println("\n=== static analysis ===")
		fmt.Println("3-bounded for sue ✓")
	}
	tv, err := collabwf.CheckTransparent(prog, "sue", 3, opts)
	if err != nil {
		log.Fatal(err)
	}
	if tv != nil {
		fmt.Println("not transparent for sue ✗ — counterexample:")
		fmt.Printf("  %s\n", tv)
	}

	// 3. The stage discipline makes the program transparent by design.
	staged, err := collabwf.Staged(prog, "sue")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== stage-disciplined program (Theorem 6.2) ===")
	fmt.Print(collabwf.PrintProgram("HiringStaged", staged))

	// A staged run is accepted by the transparency monitor with budget 3.
	sr := collabwf.NewRun(staged)
	mustFire(sr, "stage_refresh_hr", nil)
	c, err := sr.FireRule("clear", nil)
	if err != nil {
		log.Fatal(err)
	}
	cand := c.Updates[0].Key
	mustFire(sr, "stage_refresh_cfo", nil)
	mustFire(sr, "cfo_ok", map[string]collabwf.Value{"x": cand})
	mustFire(sr, "approve", map[string]collabwf.Value{"x": cand})
	mustFire(sr, "hire", map[string]collabwf.Value{"x": cand})
	mon := collabwf.NewMonitor(sr, "sue", 3)
	fmt.Printf("monitor verdict on the staged run: transparent=%v violations=%v\n",
		mon.Transparent(), mon.Violations())

	// 4. Synthesize Sue's view program from the original workflow: it
	// contains (up to naming) the paper's rules +Cleared@ω(x) :- and
	// +Hire@ω(x) :- Cleared@ω(x), the latter carrying Sue's provenance.
	res, err := collabwf.SynthesizeViewProgram(prog, "sue", 3, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== synthesized view program for sue (Theorem 5.13) ===")
	for _, r := range res.OmegaRules {
		fmt.Println(" ", r)
	}
}

func mustFire(r *collabwf.Run, rule string, bind map[string]collabwf.Value) {
	if _, err := r.FireRule(rule, bind); err != nil {
		log.Fatalf("%s: %v", rule, err)
	}
}
