// Audit: the master-server architecture from the paper's conclusion, run
// in-process. An expense workflow is hosted by a coordinator that guards
// transparency and 3-boundedness for the employee: managers and finance
// collaborate behind the scenes, the employee subscribes to her visible
// transitions — each delivered with its faithful explanation — and any
// attempt to complete an employee-visible step from stale, cross-stage
// information is rejected by the guard.
//
//	go run ./examples/audit
package main

import (
	"fmt"
	"log"

	"collabwf"
	"collabwf/internal/design"
	"collabwf/internal/server"
	"collabwf/internal/workload"
)

func main() {
	// The stage-disciplined hiring workflow doubles as an approval
	// pipeline; the guard enforces what Theorem 6.2 promises.
	staged, err := design.Staged(workload.Hiring(), "sue")
	if err != nil {
		log.Fatal(err)
	}
	c := server.New("StagedHiring", staged)
	if err := c.Guard("sue", 3); err != nil {
		log.Fatal(err)
	}

	// Sue subscribes to her visible transitions.
	notes, cancel, err := c.Subscribe("sue", 16)
	if err != nil {
		log.Fatal(err)
	}
	defer cancel()

	submit := func(peer collabwf.Peer, rule string, bind map[string]collabwf.Value) *server.SubmitResult {
		res, err := c.Submit(peer, rule, bind)
		if err != nil {
			log.Fatalf("%s: %v", rule, err)
		}
		return res
	}

	// One full approval episode.
	submit("hr", "stage_refresh_hr", nil)
	res := submit("hr", "clear", nil)
	cand := collabwf.Value(res.Updates[0][len("+Cleared(") : len(res.Updates[0])-1])
	submit("cfo", "stage_refresh_cfo", nil)
	submit("cfo", "cfo_ok", map[string]collabwf.Value{"x": cand})
	submit("ceo", "approve", map[string]collabwf.Value{"x": cand})
	submit("hr", "hire", map[string]collabwf.Value{"x": cand})

	fmt.Println("sue's notifications (with faithful explanations):")
	for {
		select {
		case n := <-notes:
			fmt.Printf("  event #%d ω=%v view=%s because=%v\n", n.Index, n.Omega, n.View, n.Because)
		default:
			goto done
		}
	}
done:

	// A second episode where hr tries to reuse last stage's approval: the
	// guard rejects the hire, protecting sue's transparency.
	submit("hr", "stage_refresh_hr", nil)
	res2 := submit("hr", "clear", nil)
	cand2 := collabwf.Value(res2.Updates[0][len("+Cleared(") : len(res2.Updates[0])-1])
	submit("cfo", "stage_refresh_cfo", nil)
	submit("cfo", "cfo_ok", map[string]collabwf.Value{"x": cand2})
	submit("ceo", "approve", map[string]collabwf.Value{"x": cand2})
	// hr closes the stage with an unrelated visible clear…
	submit("hr", "clear", nil)
	// …and then tries to hire from the now-stale approval. The stage
	// discipline blocks it structurally (the approval carries the old
	// stage id); had it slipped through, the guard's monitor would have
	// rejected it.
	if _, err := c.Submit("hr", "hire", map[string]collabwf.Value{"x": cand2}); err != nil {
		fmt.Printf("\nstale hire blocked (stage discipline + guard):\n  %v\n", err)
	} else {
		log.Fatal("the stale hire should have been blocked")
	}

	fmt.Printf("\ncoordinator state: %d events accepted\n", c.Len())
	rep, err := c.Explain("sue")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(rep)
}
