// Quickstart: define a collaborative workflow in the textual syntax, drive
// a run, inspect per-peer views, and ask for a runtime explanation.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"collabwf"
)

// A small document-review workflow: a writer drafts documents, an editor
// publishes them, and a reader — who only sees published documents — gets
// explanations of what she observes.
const spec = `
workflow Review

relation Doc(K, Author, Status)

peer writer {
    view Doc(K, Author, Status)
}
peer editor {
    view Doc(K, Author, Status)
}
peer reader {
    view Doc(K, Author) where Status = "pub"
}

rule draft at writer:
    +Doc(d, a, null) :- true

rule publish at editor:
    +Doc(d, x, "pub") :- Doc(d, x, null)

rule retract at editor:
    -Doc(d) :- Doc(d, x, "pub")
`

func main() {
	parsed, err := collabwf.Parse(spec)
	if err != nil {
		log.Fatal(err)
	}
	prog := parsed.Program

	// Drive a run: draft two documents, publish one.
	run := collabwf.NewRun(prog)
	d1, err := run.FireRule("draft", map[string]collabwf.Value{"a": "alice"})
	if err != nil {
		log.Fatal(err)
	}
	doc1 := d1.Updates[0].Key
	if _, err := run.FireRule("draft", map[string]collabwf.Value{"a": "bob"}); err != nil {
		log.Fatal(err)
	}
	if _, err := run.FireRule("publish", map[string]collabwf.Value{"d": doc1, "x": "alice"}); err != nil {
		log.Fatal(err)
	}

	fmt.Println("run:")
	fmt.Println(run)
	fmt.Println("\nglobal instance:", run.Current())

	// The reader saw exactly one transition: alice's document appearing.
	fmt.Println("\nreader's view of the final instance:", run.ViewAt(run.Len()-1, "reader"))

	// Runtime explanation for the reader: the publish she observed is
	// explained by the (invisible) draft that created the document.
	ex := collabwf.NewExplainer(run, "reader")
	fmt.Println()
	fmt.Print(ex.Report())

	fmt.Println("minimal faithful scenario (event indices):", ex.MinimalScenario())
}
