// Benchmarks, one family per experiment of the harness (see DESIGN.md's
// per-experiment index and EXPERIMENTS.md). The paper has no empirical
// tables of its own; these benchmarks measure the implementations of its
// algorithms and decision procedures. Run with
//
//	go test -bench=. -benchmem
package collabwf_test

import (
	"fmt"
	"testing"

	"collabwf/internal/data"
	"collabwf/internal/design"
	"collabwf/internal/engine"
	"collabwf/internal/faithful"
	"collabwf/internal/program"
	"collabwf/internal/query"
	"collabwf/internal/scenario"
	"collabwf/internal/schema"
	"collabwf/internal/synth"
	"collabwf/internal/transparency"
	"collabwf/internal/workload"
)

// chainSets builds the hitting-set instance {0,1},{1,2},…,{n-2,n-1}.
func chainSets(n int) workload.HittingSetInstance {
	sets := make([][]int, 0, n-1)
	for i := 0; i+1 < n; i++ {
		sets = append(sets, []int{i, i + 1})
	}
	return workload.HittingSetInstance{N: n, Sets: sets}
}

// E1 — Theorem 3.3: exact minimum-scenario search (exponential) vs the
// greedy polynomial heuristic.
func BenchmarkE1MinimumScenarioExact(b *testing.B) {
	for _, n := range []int{4, 6} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			_, r, err := workload.HittingSet(chainSets(n))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := scenario.Minimum(r, "p", scenario.Options{MaxChoice: 40, MaxChecks: 1 << 26}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkE1MinimumScenarioGreedy(b *testing.B) {
	for _, n := range []int{4, 6, 8} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			_, r, err := workload.HittingSet(chainSets(n))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				scenario.Greedy(r, "p")
			}
		})
	}
}

// E2 — Theorem 3.4: minimality checking on the formula gadget.
func BenchmarkE2MinimalityCheck(b *testing.B) {
	for _, n := range []int{3, 5} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var unsat workload.CNF
			for i := 0; i+1 < n; i++ {
				unsat = append(unsat, []workload.Lit{{Var: i}, {Var: i + 1}})
			}
			for i := 0; i < n; i++ {
				unsat = append(unsat, []workload.Lit{{Var: i, Neg: true}})
			}
			_, r, err := workload.Formula(n, unsat)
			if err != nil {
				b.Fatal(err)
			}
			all := make([]int, r.Len())
			for i := range all {
				all[i] = i
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := scenario.IsMinimal(r, "p", all, scenario.Options{MaxChoice: 40, MaxChecks: 1 << 26}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E3 — Theorem 4.7: minimal faithful scenario computation (PTIME).
func BenchmarkE3MinimalFaithful(b *testing.B) {
	for _, n := range []int{50, 200, 800} {
		b.Run(fmt.Sprintf("len=%d", n), func(b *testing.B) {
			_, r, err := workload.Chain(n)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a := faithful.NewAnalysis(r)
				if _, _, err := faithful.Minimal(a, "p"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E4 — Theorem 4.8: semiring operations on faithful scenarios.
func BenchmarkE4SemiringOps(b *testing.B) {
	_, r, err := workload.HittingSet(chainSets(6))
	if err != nil {
		b.Fatal(err)
	}
	a := faithful.NewAnalysis(r)
	x := faithful.Fixpoint(a, faithful.NewSeq(r.VisibleEvents("p")...), "p")
	all := faithful.NewSeq()
	for i := 0; i < r.Len(); i++ {
		all.Add(i)
	}
	y := faithful.Fixpoint(a, all, "p")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = faithful.Add(x, y)
		_ = faithful.Mul(x, y)
	}
}

// E5 — Section 4: incremental maintenance vs from-scratch recomputation
// over a growing run.
func BenchmarkE5Incremental(b *testing.B) {
	_, full, err := workload.Wide(5, 95)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inc := program.NewRunFrom(full.Prog, full.Initial)
		m := faithful.NewMaintainer(inc, "p")
		for j := 0; j < full.Len(); j++ {
			if err := inc.Append(full.Event(j)); err != nil {
				b.Fatal(err)
			}
			m.Sync()
		}
	}
}

func BenchmarkE5FromScratch(b *testing.B) {
	_, full, err := workload.Wide(5, 95)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scr := program.NewRunFrom(full.Prog, full.Initial)
		for j := 0; j < full.Len(); j++ {
			if err := scr.Append(full.Event(j)); err != nil {
				b.Fatal(err)
			}
			a := faithful.NewAnalysis(scr)
			faithful.Fixpoint(a, faithful.NewSeq(scr.VisibleEvents("p")...), "p")
		}
	}
}

// E6 — Theorem 5.10: h-boundedness decision.
func BenchmarkE6Boundedness(b *testing.B) {
	for _, d := range []int{2, 3} {
		for _, w := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("chain=%d/workers=%d", d, w), func(b *testing.B) {
				p, _, err := workload.Chain(d)
				if err != nil {
					b.Fatal(err)
				}
				opts := transparency.Options{PoolFresh: 1, MaxTuplesPerRelation: 1, Parallelism: w}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := transparency.CheckBounded(p, "p", d, opts); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// E7 — Theorem 5.11: transparency decision on the hiring program, at
// increasing worker-pool widths (verdict and witness are width-invariant).
func BenchmarkE7Transparency(b *testing.B) {
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			p := workload.Hiring()
			opts := transparency.Options{PoolFresh: 2, MaxTuplesPerRelation: 1, Parallelism: w}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v, err := transparency.CheckTransparent(p, "sue", 3, opts)
				if err != nil {
					b.Fatal(err)
				}
				if v == nil {
					b.Fatal("hiring must not be transparent")
				}
			}
		})
	}
}

// E8 — Theorem 5.13: view-program synthesis.
func BenchmarkE8Synthesis(b *testing.B) {
	p := workload.Hiring()
	opts := transparency.Options{PoolFresh: 2, MaxTuplesPerRelation: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := synth.Synthesize(p, "sue", 3, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// E9 — Theorem 6.3: the closed-form acyclicity bound.
func BenchmarkE9AcyclicBound(b *testing.B) {
	p, _, err := workload.Chain(4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := design.AcyclicBound(p, "p"); err != nil {
			b.Fatal(err)
		}
	}
}

// E10 — Remark 6.9: runtime monitor overhead on a staged run.
func BenchmarkE10Monitor(b *testing.B) {
	staged, err := design.Staged(workload.Hiring(), "sue")
	if err != nil {
		b.Fatal(err)
	}
	run := buildStagedRun(b, staged, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := design.NewMonitor(run, "sue", 3)
		if !m.Transparent() {
			b.Fatal("clean run flagged")
		}
	}
}

func buildStagedRun(b *testing.B, staged *program.Program, rounds int) *program.Run {
	b.Helper()
	r := program.NewRun(staged)
	for i := 0; i < rounds; i++ {
		if _, err := r.FireRule("stage_refresh_hr", nil); err != nil {
			b.Fatal(err)
		}
		e, err := r.FireRule("clear", nil)
		if err != nil {
			b.Fatal(err)
		}
		cand := e.Updates[0].Key
		if _, err := r.FireRule("stage_refresh_cfo", nil); err != nil {
			b.Fatal(err)
		}
		for _, step := range []string{"cfo_ok", "approve", "hire"} {
			if _, err := r.FireRule(step, map[string]data.Value{"x": cand}); err != nil {
				b.Fatal(err)
			}
		}
	}
	return r
}

// E11 — explanation compression on noisy runs.
func BenchmarkE11Compression(b *testing.B) {
	for _, noise := range []int{0, 100} {
		b.Run(fmt.Sprintf("noise=%d", noise), func(b *testing.B) {
			_, r, err := workload.Wide(5, noise)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a := faithful.NewAnalysis(r)
				if _, _, err := faithful.Minimal(a, "p"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E12 — Proposition 2.3: normal-form rewriting.
func BenchmarkE12NormalForm(b *testing.B) {
	p := workload.Hiring()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.NormalForm(); err != nil {
			b.Fatal(err)
		}
	}
}

// Substrate micro-benchmarks.
func BenchmarkSubstrateRandomRun(b *testing.B) {
	p := workload.Hiring()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.RandomRun(p, 12, int64(i), 4); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation: greedy removal order (backward default vs forward). Backward
// removal sheds dependents before prerequisites and usually probes fewer
// non-scenarios.
func BenchmarkAblationGreedyBackward(b *testing.B) {
	_, r, err := workload.HittingSet(chainSets(7))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scenario.GreedyOrder(r, "p", false)
	}
}

func BenchmarkAblationGreedyForward(b *testing.B) {
	_, r, err := workload.HittingSet(chainSets(7))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scenario.GreedyOrder(r, "p", true)
	}
}

// Ablation: the incremental maintainer's per-event cost vs batch fixpoint
// on the final run only (what a non-streaming explainer would do once).
func BenchmarkAblationBatchFixpointFinalOnly(b *testing.B) {
	_, full, err := workload.Wide(5, 95)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := faithful.NewAnalysis(full)
		faithful.Fixpoint(a, faithful.NewSeq(full.VisibleEvents("p")...), "p")
	}
}

// The key-bound lookup path keeps per-probe cost flat as relations grow
// (the scan path would be linear).
func BenchmarkQueryKeyLookup(b *testing.B) {
	for _, n := range []int{100, 10000} {
		b.Run(fmt.Sprintf("rows=%d", n), func(b *testing.B) {
			rel := schema.MustRelation("R", "A")
			db := schema.MustDatabase(rel)
			s := schema.NewCollaborative(db)
			s.MustAddView(schema.MustView(rel, "p", []data.Attr{"A"}, nil))
			in := schema.NewInstance(db)
			for i := 0; i < n; i++ {
				in.MustPut("R", data.Tuple{data.Value(fmt.Sprintf("k%d", i)), "v"})
			}
			vi := schema.ViewOf(in, s, "p")
			q := query.Query{query.Atom{Rel: "R", Args: []query.Term{query.C("k42"), query.V("a")}}}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := q.Eval(vi, 0); len(got) != 1 {
					b.Fatal("lookup failed")
				}
			}
		})
	}
}
